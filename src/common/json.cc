#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/strings.h"

namespace seagull {

namespace {
const Json kNullJson;
}  // namespace

const Json& Json::operator[](const std::string& key) const {
  if (type_ != Type::kObject) return kNullJson;
  auto it = obj_.find(key);
  return it == obj_.end() ? kNullJson : it->second;
}

Json& Json::operator[](const std::string& key) {
  if (type_ != Type::kObject) {
    type_ = Type::kObject;
    obj_.clear();
  }
  return obj_[key];
}

bool Json::Contains(const std::string& key) const {
  return type_ == Type::kObject && obj_.count(key) > 0;
}

Result<double> Json::GetNumber(const std::string& key) const {
  const Json& v = (*this)[key];
  if (!v.is_number()) return Status::NotFound("missing number field: " + key);
  return v.AsDouble();
}

Result<std::string> Json::GetString(const std::string& key) const {
  const Json& v = (*this)[key];
  if (!v.is_string()) return Status::NotFound("missing string field: " + key);
  return v.AsString();
}

Result<bool> Json::GetBool(const std::string& key) const {
  const Json& v = (*this)[key];
  if (!v.is_bool()) return Status::NotFound("missing bool field: " + key);
  return v.AsBool();
}

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void AppendNumber(std::string* out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    *out += buf;
  } else if (std::isfinite(d)) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    *out += buf;
  } else {
    *out += "null";  // JSON has no Inf/NaN.
  }
}

void Indent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  *out += '\n';
  out->append(static_cast<size_t>(indent * depth), ' ');
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(out, num_);
      break;
    case Type::kString:
      AppendEscaped(out, str_);
      break;
    case Type::kArray: {
      *out += '[';
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) *out += ',';
        first = false;
        Indent(out, indent, depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      if (!arr_.empty()) Indent(out, indent, depth);
      *out += ']';
      break;
    }
    case Type::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) *out += ',';
        first = false;
        Indent(out, indent, depth + 1);
        AppendEscaped(out, k);
        *out += indent > 0 ? ": " : ":";
        v.DumpTo(out, indent, depth + 1);
      }
      if (!obj_.empty()) Indent(out, indent, depth);
      *out += '}';
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out, 0, 0);
  return out;
}

std::string Json::DumpPretty() const {
  std::string out;
  DumpTo(&out, 2, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Result<Json> Parse() {
    SkipWs();
    SEAGULL_ASSIGN_OR_RETURN(Json v, ParseValue());
    SkipWs();
    if (pos_ != s_.size()) return Err("trailing characters after JSON value");
    return v;
  }

 private:
  Status Err(const std::string& msg) {
    return Status::Invalid(
        StringPrintf("JSON parse error at offset %zu: %s", pos_, msg.c_str()));
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    if (pos_ >= s_.size()) return Err("unexpected end of input");
    char c = s_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        SEAGULL_ASSIGN_OR_RETURN(std::string str, ParseString());
        return Json(std::move(str));
      }
      case 't':
        if (s_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          return Json(true);
        }
        return Err("invalid literal");
      case 'f':
        if (s_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          return Json(false);
        }
        return Err("invalid literal");
      case 'n':
        if (s_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          return Json();
        }
        return Err("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseObject() {
    ++pos_;  // '{'
    Json::Object obj;
    SkipWs();
    if (Consume('}')) return Json(std::move(obj));
    while (true) {
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != '"') return Err("expected key");
      SEAGULL_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      SEAGULL_ASSIGN_OR_RETURN(Json v, ParseValue());
      obj.emplace(std::move(key), std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Err("expected ',' or '}'");
    }
    return Json(std::move(obj));
  }

  Result<Json> ParseArray() {
    ++pos_;  // '['
    Json::Array arr;
    SkipWs();
    if (Consume(']')) return Json(std::move(arr));
    while (true) {
      SkipWs();
      SEAGULL_ASSIGN_OR_RETURN(Json v, ParseValue());
      arr.push_back(std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Err("expected ',' or ']'");
    }
    return Json(std::move(arr));
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) return Err("bad escape");
        char e = s_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return Err("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Err("bad hex digit in \\u escape");
              }
            }
            if (code > 0x7f) return Err("non-ASCII \\u escape unsupported");
            out += static_cast<char>(code);
            break;
          }
          default:
            return Err("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return Err("unterminated string");
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected value");
    auto v = ParseDouble(s_.substr(start, pos_ - start));
    if (!v.ok()) return Err("malformed number");
    return Json(*v);
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).Parse();
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return num_ == other.num_;
    case Type::kString:
      return str_ == other.str_;
    case Type::kArray:
      return arr_ == other.arr_;
    case Type::kObject:
      return obj_ == other.obj_;
  }
  return false;
}

}  // namespace seagull
