/// \file retry.h
/// \brief Retry/backoff policy for transient failures.
///
/// Production Seagull leans on Azure SDK retries for blob and Cosmos
/// hiccups and falls back "as appropriate" when they persist (§1,
/// §2.2). This is the reproduction's equivalent: exponential backoff
/// with *deterministic* jitter (a hash of the operation key and attempt
/// index, never a live RNG), a retryable-status taxonomy over
/// `StatusCode`, and attempt/time budgets. Used by `ResilientStore`,
/// by `Pipeline::Run` around each module, and by the post-run
/// record-keeping in the scheduler and incident manager.

#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"

namespace seagull {

/// \brief Knobs of one retry loop.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retries, the legacy
  /// fail-fast behavior).
  int max_attempts = 3;
  /// Backoff before retry k (1-based) is
  /// `min(base * multiplier^(k-1), max) * jitter`.
  double base_backoff_millis = 1.0;
  double backoff_multiplier = 2.0;
  double max_backoff_millis = 64.0;
  /// Stops retrying (not the in-flight attempt — operations are
  /// synchronous and cannot be preempted) once the loop has spent this
  /// long overall. 0 disables the budget.
  double max_elapsed_millis = 0.0;
  /// An attempt that ran longer than this is treated as expired:
  /// its status is replaced by a retryable `ResourceExhausted` so the
  /// loop retries (or reports exhaustion) exactly as for a transient
  /// error. 0 disables the check.
  double attempt_timeout_millis = 0.0;
  /// Seed of the deterministic jitter stream.
  uint64_t jitter_seed = 0;
  /// Backoff is scaled by a factor in [1 - f, 1 + f).
  double jitter_fraction = 0.25;
};

/// True for status codes that model transient infrastructure failures
/// (worth retrying): `kIOError` and `kResourceExhausted`. Everything
/// else — bad input, missing data, logic errors — fails fast.
bool IsRetryableStatus(const Status& status);

/// Deterministic backoff before retry `attempt` (1-based) of the
/// operation identified by `op_key`. Pure function of the policy and
/// its inputs; two processes with the same policy compute the same
/// schedule.
double BackoffMillis(const RetryPolicy& policy, const std::string& op_key,
                     int attempt);

/// \brief What a retry loop did.
struct RetryOutcome {
  Status status;      ///< final status (OK, or the last failure)
  int attempts = 0;   ///< attempts actually made (>= 1)
  /// Retries = attempts beyond the first.
  int64_t retries() const { return attempts > 0 ? attempts - 1 : 0; }
  /// True when the loop gave up on a *retryable* failure (attempt or
  /// time budget spent) — the caller should degrade, not crash.
  bool exhausted = false;
};

/// Runs `op` under `policy`, sleeping the deterministic backoff between
/// attempts. `on_retry(attempt, status)` (optional) fires before each
/// backoff sleep, letting callers record an incident per retry.
RetryOutcome RunWithRetry(
    const RetryPolicy& policy, const std::string& op_key,
    const std::function<Status()>& op,
    const std::function<void(int, const Status&)>& on_retry = nullptr);

}  // namespace seagull
