#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/random.h"

namespace seagull {

namespace {

/// SplitMix64-style mix for the jitter stream (same construction as the
/// fault registry's decision hash, different constants-by-inputs).
uint64_t MixJitter(uint64_t seed, uint64_t key_hash, uint64_t attempt) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (key_hash + 3) +
               0x94d049bb133111ebULL * (attempt + 5);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

bool IsRetryableStatus(const Status& status) {
  return status.IsIOError() || status.IsResourceExhausted();
}

double BackoffMillis(const RetryPolicy& policy, const std::string& op_key,
                     int attempt) {
  if (attempt < 1) attempt = 1;
  double backoff = policy.base_backoff_millis;
  for (int k = 1; k < attempt; ++k) backoff *= policy.backoff_multiplier;
  backoff = std::min(backoff, policy.max_backoff_millis);
  if (policy.jitter_fraction > 0.0) {
    const uint64_t h = MixJitter(policy.jitter_seed, Rng::HashString(op_key),
                                 static_cast<uint64_t>(attempt));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    backoff *= 1.0 + policy.jitter_fraction * (2.0 * u - 1.0);
  }
  return std::max(backoff, 0.0);
}

RetryOutcome RunWithRetry(
    const RetryPolicy& policy, const std::string& op_key,
    const std::function<Status()>& op,
    const std::function<void(int, const Status&)>& on_retry) {
  RetryOutcome outcome;
  const int max_attempts = std::max(policy.max_attempts, 1);
  const auto loop_start = std::chrono::steady_clock::now();
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    const auto attempt_start = std::chrono::steady_clock::now();
    Status status = op();
    const auto now = std::chrono::steady_clock::now();
    outcome.attempts = attempt;
    const double attempt_millis =
        std::chrono::duration<double, std::milli>(now - attempt_start)
            .count();
    if (status.ok() && policy.attempt_timeout_millis > 0.0 &&
        attempt_millis > policy.attempt_timeout_millis) {
      status = Status::ResourceExhausted(
          "attempt timed out: " + op_key);
    }
    if (status.ok()) {
      outcome.status = status;
      return outcome;
    }
    if (!IsRetryableStatus(status)) {
      outcome.status = status;
      return outcome;
    }
    const double elapsed_millis =
        std::chrono::duration<double, std::milli>(now - loop_start).count();
    const bool budget_spent = policy.max_elapsed_millis > 0.0 &&
                              elapsed_millis >= policy.max_elapsed_millis;
    if (attempt == max_attempts || budget_spent) {
      outcome.status = status;
      outcome.exhausted = true;
      return outcome;
    }
    if (on_retry) on_retry(attempt, status);
    const double backoff = BackoffMillis(policy, op_key, attempt);
    if (backoff > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          backoff));
    }
  }
  return outcome;  // unreachable
}

}  // namespace seagull
