/// \file random.h
/// \brief Deterministic pseudo-random generation for the fleet simulator.
///
/// Every stochastic component in Seagull derives its stream from an
/// explicit seed so that tests and benchmark figures are reproducible
/// run-to-run. The generator is SplitMix64-seeded xoshiro256++.

#pragma once

#include <cstdint>
#include <string>

namespace seagull {

/// \brief Small, fast, deterministic PRNG (xoshiro256++).
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seeds the stream via SplitMix64 expansion of `seed`.
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal deviate (Box–Muller, cached spare).
  double Gaussian();

  /// Normal with mean `mu` and standard deviation `sigma`.
  double Gaussian(double mu, double sigma);

  /// Bernoulli trial.
  bool Chance(double p);

  /// Exponential deviate with the given mean.
  double Exponential(double mean);

  /// Derives an independent child generator; `salt` distinguishes
  /// siblings (e.g. one stream per server id).
  Rng Fork(uint64_t salt) const;

  /// Stable 64-bit hash of a string, for seeding per-name streams.
  static uint64_t HashString(const std::string& s);

 private:
  uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace seagull
