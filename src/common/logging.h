/// \file logging.h
/// \brief Minimal leveled logger used by the pipeline and scheduler.
///
/// The pipeline's incident-management module (§2.2) consumes structured
/// events rather than log lines; this logger exists for human-readable
/// operational traces and is quiet (warnings and up) by default so tests
/// and benches stay clean.

#pragma once

#include <cstdarg>
#include <string>

namespace seagull {

enum class LogLevel : int8_t {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// \brief Process-wide logger configuration.
class Logger {
 public:
  /// Sets the minimum level that will be emitted.
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();

  /// printf-style emission with a level prefix to stderr.
  static void Log(LogLevel level, const char* fmt, ...)
      __attribute__((format(printf, 2, 3)));
};

}  // namespace seagull

#define SEAGULL_LOG_DEBUG(...) \
  ::seagull::Logger::Log(::seagull::LogLevel::kDebug, __VA_ARGS__)
#define SEAGULL_LOG_INFO(...) \
  ::seagull::Logger::Log(::seagull::LogLevel::kInfo, __VA_ARGS__)
#define SEAGULL_LOG_WARN(...) \
  ::seagull::Logger::Log(::seagull::LogLevel::kWarning, __VA_ARGS__)
#define SEAGULL_LOG_ERROR(...) \
  ::seagull::Logger::Log(::seagull::LogLevel::kError, __VA_ARGS__)
