/// \file csv.h
/// \brief CSV reading/writing for telemetry files.
///
/// The pipeline's input files "are in csv format" (§5.3.1): server id,
/// timestamp in minutes, average user CPU load per interval, and default
/// backup start/end timestamps. This is a small RFC-4180-ish implementation
/// (quoted fields, embedded commas/quotes/newlines) sufficient for that
/// format and for the lake store.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace seagull {

/// \brief In-memory CSV document: a header plus string rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a named column, or -1.
  int ColumnIndex(const std::string& name) const;

  size_t NumRows() const { return rows.size(); }
  size_t NumColumns() const { return header.size(); }
};

/// Parses CSV text (first row is the header). Every row must have the same
/// arity as the header.
Result<CsvTable> ParseCsv(const std::string& text);

/// Serializes with minimal quoting.
std::string WriteCsv(const CsvTable& table);

/// Reads and parses a CSV file from disk.
Result<CsvTable> ReadCsvFile(const std::string& path);

/// Writes a CSV file to disk, creating parent directories.
Status WriteCsvFile(const std::string& path, const CsvTable& table);

}  // namespace seagull
