#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>

namespace seagull {

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  const char* ws = " \t\r\n\f\v";
  size_t b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  size_t e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf(TrimWhitespace(s));
  if (buf.empty()) return Status::Invalid("empty numeric field");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::Invalid("malformed double: '" + buf + "'");
  }
  return v;
}

Result<int64_t> ParseInt64(std::string_view s) {
  std::string buf(TrimWhitespace(s));
  if (buf.empty()) return Status::Invalid("empty integer field");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::Invalid("malformed integer: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

std::string StringPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace seagull
