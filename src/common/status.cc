#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace seagull {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

void Status::Abort() const {
  if (ok()) return;
  std::fprintf(stderr, "Fatal status: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace seagull
