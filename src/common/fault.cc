#include "common/fault.h"

#include "common/obs/metrics.h"
#include "common/random.h"

namespace seagull {

namespace {

/// Published alongside the registry's internal counters so fault
/// outcomes show up in `--metrics-out` and the bench snapshots.
void CountInjected(const std::string& point) {
  MetricsRegistry::Global()
      .GetCounter("seagull.fault.injected", {{"point", point}})
      ->Increment();
}

/// SplitMix64 finalizer — mixes the seed, the (point, key) hash, and
/// the per-key attempt index into one well-distributed word.
uint64_t MixFault(uint64_t seed, uint64_t key_hash, uint64_t attempt) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (key_hash + 1) +
               0xbf58476d1ce4e5b9ULL * (attempt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::Configure(const FaultConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  point_rates_.clear();
  outages_.clear();
  hits_.clear();
  injected_.clear();
  calls_.clear();
  enabled_.store(true, std::memory_order_release);
}

void FaultRegistry::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_release);
  config_ = FaultConfig{};
  point_rates_.clear();
  outages_.clear();
  hits_.clear();
  injected_.clear();
  calls_.clear();
}

bool FaultRegistry::enabled() const {
  return enabled_.load(std::memory_order_acquire);
}

void FaultRegistry::SetPointRate(const std::string& point, double rate) {
  std::lock_guard<std::mutex> lock(mu_);
  point_rates_[point] = rate;
}

void FaultRegistry::AddOutage(const std::string& point,
                              const std::string& key_substring,
                              int64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  outages_.push_back({point, key_substring, count});
}

Status FaultRegistry::Inject(const std::string& point,
                             const std::string& op_key) {
  if (!enabled_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return Status::OK();
  ++calls_[point];
  for (Outage& outage : outages_) {
    if (outage.remaining == 0 || outage.point != point) continue;
    if (!outage.key_substring.empty() &&
        op_key.find(outage.key_substring) == std::string::npos) {
      continue;
    }
    if (outage.remaining > 0) --outage.remaining;
    ++injected_[point];
    CountInjected(point);
    return Status::IOError("injected outage at " + point + " [" + op_key +
                           "]");
  }
  auto rate_it = point_rates_.find(point);
  const double rate =
      rate_it != point_rates_.end() ? rate_it->second : config_.rate;
  if (rate <= 0.0) return Status::OK();
  const std::string hit_key = point + '\x1f' + op_key;
  const int64_t attempt = hits_[hit_key]++;
  const uint64_t h = MixFault(config_.seed, Rng::HashString(hit_key),
                              static_cast<uint64_t>(attempt));
  // 53 high bits -> uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u < rate) {
    ++injected_[point];
    CountInjected(point);
    return Status::IOError("injected fault at " + point + " [" + op_key +
                           "]");
  }
  return Status::OK();
}

int64_t FaultRegistry::InjectedCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = injected_.find(point);
  return it == injected_.end() ? 0 : it->second;
}

int64_t FaultRegistry::CallCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = calls_.find(point);
  return it == calls_.end() ? 0 : it->second;
}

int64_t FaultRegistry::TotalInjected() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [point, n] : injected_) total += n;
  return total;
}

}  // namespace seagull
