/// \file fault.h
/// \brief Deterministic fault-injection substrate.
///
/// Azure's production stores fail transiently: blob reads time out,
/// Cosmos upserts get throttled, whole regions go dark (§2.2 incident
/// management). The reproduction exercises those paths through a
/// process-wide `FaultRegistry` of *named injection points* compiled
/// into the store layer (`lake.get`, `doc.upsert`, ...). Each
/// instrumented call asks the registry whether to fail; the decision is
/// a pure function of (seed, point, operation key, per-key attempt
/// index), never of wall clock or thread interleaving, so a fixed fault
/// seed produces the same faults at `--jobs 1` and `--jobs 8` — the
/// chaos tests compare the resulting document stores byte for byte.
///
/// The registry is disabled by default (one relaxed atomic load per
/// instrumented call). Tests enable it through `ScopedFaultInjection`,
/// the CLI through `--fault-rate` / `--fault-seed`.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace seagull {

/// \brief Global knobs of the fault substrate.
struct FaultConfig {
  /// Seed of every probabilistic decision; two runs with the same seed
  /// (and the same sequence of per-key calls) inject identical faults.
  uint64_t seed = 0;
  /// Default per-call failure probability at every injection point.
  double rate = 0.0;
};

/// \brief Process-wide registry of named fault-injection points.
///
/// Thread-safe. Decisions depend only on configuration and on a hit
/// counter scoped to (point, operation key); as long as any one key is
/// exercised by a deterministic sequence of calls (which the store
/// partitioning guarantees — regions touch only their own keys), the
/// injected fault set is independent of thread schedule.
class FaultRegistry {
 public:
  /// The singleton the instrumented stores consult.
  static FaultRegistry& Global();

  /// Enables injection with `config`, clearing all prior state.
  void Configure(const FaultConfig& config);

  /// Disables injection and clears rates, outages, and counters.
  void Disable();

  bool enabled() const;

  /// Overrides the failure probability of one point (else `config.rate`).
  void SetPointRate(const std::string& point, double rate);

  /// Forces failures: the next `count` calls at `point` whose operation
  /// key contains `key_substring` fail unconditionally (an empty
  /// substring matches every key; `count < 0` means fail forever — a
  /// region-sized outage that exhausts retries).
  void AddOutage(const std::string& point, const std::string& key_substring,
                 int64_t count);

  /// The instrumented call: OK to proceed, or the injected error
  /// (`IOError`, the retryable-transient code) to propagate.
  Status Inject(const std::string& point, const std::string& op_key);

  /// \name Counters for test assertions.
  /// @{
  /// Faults fired at one point since `Configure`.
  int64_t InjectedCount(const std::string& point) const;
  /// Calls evaluated at one point since `Configure`.
  int64_t CallCount(const std::string& point) const;
  /// Faults fired across all points.
  int64_t TotalInjected() const;
  /// @}

 private:
  struct Outage {
    std::string point;
    std::string key_substring;
    int64_t remaining = 0;  ///< < 0 = unlimited
  };

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  FaultConfig config_;
  std::map<std::string, double> point_rates_;
  std::vector<Outage> outages_;
  std::map<std::string, int64_t> hits_;  ///< per (point, op key)
  std::map<std::string, int64_t> injected_;
  std::map<std::string, int64_t> calls_;
};

/// \brief RAII enablement of the global registry for one test scope.
///
/// Configures `FaultRegistry::Global()` on construction and disables +
/// clears it on destruction, so chaos suites cannot leak faults into
/// later tests.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultConfig& config) {
    FaultRegistry::Global().Configure(config);
  }
  ~ScopedFaultInjection() { FaultRegistry::Global().Disable(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  FaultRegistry& registry() { return FaultRegistry::Global(); }
};

}  // namespace seagull

/// Instruments one fallible operation: propagates an injected fault to
/// the caller, else falls through.
#define SEAGULL_FAULT_POINT(point, op_key)                        \
  SEAGULL_RETURN_NOT_OK(                                          \
      ::seagull::FaultRegistry::Global().Inject((point), (op_key)))
