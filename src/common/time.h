/// \file time.h
/// \brief Simulation calendar: a minute-resolution clock on a fixed epoch.
///
/// Seagull telemetry is a regular grid of load samples (5 minutes apart for
/// PostgreSQL/MySQL servers, 15 minutes for SQL databases, §A.1). All
/// timestamps in the library are minutes since the simulation epoch, which
/// is defined to fall on a Monday at 00:00 so that day-of-week arithmetic
/// is pure modular arithmetic.

#pragma once

#include <cstdint>
#include <string>

namespace seagull {

/// Minutes since the simulation epoch (Monday 00:00).
using MinuteStamp = int64_t;

inline constexpr int64_t kMinutesPerHour = 60;
inline constexpr int64_t kMinutesPerDay = 24 * kMinutesPerHour;
inline constexpr int64_t kMinutesPerWeek = 7 * kMinutesPerDay;

/// Telemetry granularity for PostgreSQL/MySQL servers (§2.2).
inline constexpr int64_t kServerIntervalMinutes = 5;
/// Telemetry granularity for SQL databases (§A.1).
inline constexpr int64_t kSqlIntervalMinutes = 15;

/// Samples per day at a given granularity.
constexpr int64_t TicksPerDay(int64_t interval_minutes) {
  return kMinutesPerDay / interval_minutes;
}

/// Days of the week; the epoch falls on a Monday.
enum class DayOfWeek : int8_t {
  kMonday = 0,
  kTuesday = 1,
  kWednesday = 2,
  kThursday = 3,
  kFriday = 4,
  kSaturday = 5,
  kSunday = 6,
};

/// \brief Stable display name, e.g. "Monday".
const char* DayOfWeekName(DayOfWeek d);

/// Day number since epoch (day 0 starts at minute 0).
constexpr int64_t DayIndex(MinuteStamp t) {
  return t >= 0 ? t / kMinutesPerDay
                : (t - (kMinutesPerDay - 1)) / kMinutesPerDay;
}

/// Week number since epoch.
constexpr int64_t WeekIndex(MinuteStamp t) {
  return t >= 0 ? t / kMinutesPerWeek
                : (t - (kMinutesPerWeek - 1)) / kMinutesPerWeek;
}

/// First minute of the day containing `t`.
constexpr MinuteStamp StartOfDay(MinuteStamp t) {
  return DayIndex(t) * kMinutesPerDay;
}

/// First minute of the week containing `t`.
constexpr MinuteStamp StartOfWeek(MinuteStamp t) {
  return WeekIndex(t) * kMinutesPerWeek;
}

/// Minute offset within the day, in [0, 1440).
constexpr int64_t MinuteOfDay(MinuteStamp t) { return t - StartOfDay(t); }

/// Day of week of the day containing `t`.
constexpr DayOfWeek DayOfWeekOf(MinuteStamp t) {
  int64_t d = DayIndex(t) % 7;
  if (d < 0) d += 7;
  return static_cast<DayOfWeek>(d);
}

/// Renders `t` as e.g. "W2 Tue 14:35" for logs and dashboards.
std::string FormatMinute(MinuteStamp t);

/// Renders a minute-of-day offset as "HH:MM".
std::string FormatTimeOfDay(int64_t minute_of_day);

}  // namespace seagull
