#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace seagull {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}
}  // namespace

void Logger::SetLevel(LogLevel level) { g_level.store(level); }

LogLevel Logger::GetLevel() { return g_level.load(); }

void Logger::Log(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load()) return;
  char buf[2048];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  std::fprintf(stderr, "[seagull %s] %s\n", LevelName(level), buf);
}

}  // namespace seagull
