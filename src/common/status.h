/// \file status.h
/// \brief Error propagation primitives for the Seagull library.
///
/// Seagull follows the Arrow/RocksDB idiom: no exceptions cross public API
/// boundaries. Fallible operations return a `Status`, or a `Result<T>`
/// (see result.h) when they also produce a value.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace seagull {

/// \brief Machine-readable category of a `Status`.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kDataLoss = 6,
  kIOError = 7,
  kNotImplemented = 8,
  kInternal = 9,
  kCancelled = 10,
  kResourceExhausted = 11,
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// An OK status carries no allocation; error statuses allocate a small
/// state block. `Status` is cheap to move and to copy-on-OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  /// \name Factory helpers, one per code.
  /// @{
  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// @}

  bool ok() const noexcept { return state_ == nullptr; }
  StatusCode code() const noexcept {
    return state_ ? state_->code : StatusCode::kOk;
  }
  /// Error message; empty for OK statuses.
  const std::string& message() const noexcept {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalid() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// Renders e.g. `"Invalid: bucket ratio threshold must be in [0,1]"`.
  std::string ToString() const;

  /// Prepends context to the message, keeping the code. No-op on OK.
  Status WithContext(const std::string& context) const;

  /// Aborts the process with the status message if not OK. For use in
  /// tests, examples, and benches where an error is a programming bug.
  void Abort() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<const State> state_;
};

}  // namespace seagull

/// Propagates a non-OK status to the caller.
#define SEAGULL_RETURN_NOT_OK(expr)                  \
  do {                                               \
    ::seagull::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (false)

#define SEAGULL_CONCAT_IMPL(a, b) a##b
#define SEAGULL_CONCAT(a, b) SEAGULL_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression, propagating errors; on success binds
/// the value to `lhs`. Usage: SEAGULL_ASSIGN_OR_RETURN(auto v, Foo());
#define SEAGULL_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  SEAGULL_ASSIGN_OR_RETURN_IMPL(                                    \
      SEAGULL_CONCAT(_seagull_result_, __LINE__), lhs, rexpr)

#define SEAGULL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto&& tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueUnsafe()
