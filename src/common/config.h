/// \file config.h
/// \brief Production constants from the paper (Definitions 1–9).
///
/// The paper states these were "empirically chosen by domain experts and
/// are now used in production for the backup scheduling use case"; other
/// constants can be plugged in for other scenarios, so every consumer in
/// this library takes them as parameters with these values as defaults.

#pragma once

#include <cstdint>

namespace seagull {

/// \brief Tolerances and thresholds of the low-load accuracy metrics.
struct AccuracyConfig {
  /// Definition 1: a predicted point may exceed its true point by at most
  /// this many CPU-percentage points and still land in the bucket.
  double over_bound = 10.0;
  /// Definition 1: a predicted point may undershoot its true point by at
  /// most this many points. Asymmetric on purpose: under-prediction risks
  /// scheduling a backup into real customer load.
  double under_bound = 5.0;
  /// Definition 2: a prediction is accurate if at least this fraction of
  /// points is inside the bound.
  double accurate_bucket_ratio = 0.90;
  /// Definition 8: the predicted LL window is chosen correctly when its
  /// average *true* load is within this many points of the true LL
  /// window's average true load.
  double window_tolerance = 10.0;
};

/// \brief Fleet- and scheduling-level constants.
struct FleetConfig {
  /// Definition 3 / Definition 9: history required to call a server
  /// long-lived, and the span over which predictability is verified.
  int64_t long_lived_weeks = 3;
  /// Servers are due for a full backup at least once a week (§2.2), so
  /// the pipeline runs weekly per region.
  int64_t pipeline_period_weeks = 1;
  /// §5.3.1: servers need at least this many days of history before their
  /// backup day for a model to be trained.
  int64_t min_history_days = 3;
};

}  // namespace seagull
