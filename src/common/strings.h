/// \file strings.h
/// \brief Small string helpers shared across modules.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace seagull {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Joins with a delimiter.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delim);

/// Strips ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a double; rejects trailing garbage.
Result<double> ParseDouble(std::string_view s);

/// Parses a signed 64-bit integer; rejects trailing garbage.
Result<int64_t> ParseInt64(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace seagull
