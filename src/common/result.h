/// \file result.h
/// \brief `Result<T>`: a value or an error `Status`.

#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace seagull {

/// \brief Holds either a successfully computed `T` or the `Status`
/// explaining why it could not be computed.
///
/// Mirrors `arrow::Result`. Construct from a value for success or from a
/// non-OK `Status` for failure. Constructing from an OK status is a
/// programming error and is converted to an Internal error.
template <typename T>
class Result {
 public:
  /// Success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit

  /// Failure. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OK if this result holds a value.
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  /// The contained value. Requires `ok()`.
  const T& ValueUnsafe() const& {
    assert(ok());
    return *value_;
  }
  T& ValueUnsafe() & {
    assert(ok());
    return *value_;
  }
  T ValueUnsafe() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueUnsafe(); }
  T& operator*() & { return ValueUnsafe(); }
  const T* operator->() const { return &ValueUnsafe(); }
  T* operator->() { return &ValueUnsafe(); }

  /// Returns the value, aborting the process on error. For tests/benches.
  T ValueOrDie() && {
    status_.Abort();
    return std::move(*value_);
  }
  const T& ValueOrDie() const& {
    status_.Abort();
    return *value_;
  }

  /// Returns the value or `fallback` if this result is an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace seagull
