#include "common/csv.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace seagull {

int CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

// Parses one logical CSV record starting at *pos; advances *pos past the
// record's terminating newline (or to text.size()).
Result<std::vector<std::string>> ParseRecord(const std::string& text,
                                             size_t* pos) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
    } else if (c == '"') {
      if (!field.empty()) {
        return Status::Invalid("quote inside unquoted CSV field");
      }
      in_quotes = true;
      ++i;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
      ++i;
    } else if (c == '\n' || c == '\r') {
      if (c == '\r' && i + 1 < n && text[i + 1] == '\n') ++i;
      ++i;
      break;
    } else {
      field += c;
      ++i;
    }
  }
  if (in_quotes) return Status::Invalid("unterminated quoted CSV field");
  fields.push_back(std::move(field));
  *pos = i;
  return fields;
}

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\r\n") != std::string::npos;
}

void AppendField(std::string* out, const std::string& field) {
  if (!NeedsQuoting(field)) {
    *out += field;
    return;
  }
  *out += '"';
  for (char c : field) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

}  // namespace

Result<CsvTable> ParseCsv(const std::string& text) {
  CsvTable table;
  size_t pos = 0;
  if (text.empty()) return Status::Invalid("empty CSV document");
  SEAGULL_ASSIGN_OR_RETURN(table.header, ParseRecord(text, &pos));
  while (pos < text.size()) {
    // Skip blank trailing lines.
    if (text[pos] == '\n' || text[pos] == '\r') {
      ++pos;
      continue;
    }
    SEAGULL_ASSIGN_OR_RETURN(auto row, ParseRecord(text, &pos));
    if (row.size() != table.header.size()) {
      return Status::Invalid(StringPrintf(
          "CSV row %zu has %zu fields, header has %zu", table.rows.size() + 2,
          row.size(), table.header.size()));
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

std::string WriteCsv(const CsvTable& table) {
  std::string out;
  for (size_t i = 0; i < table.header.size(); ++i) {
    if (i > 0) out += ',';
    AppendField(&out, table.header[i]);
  }
  out += '\n';
  for (const auto& row : table.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      AppendField(&out, row[i]);
    }
    out += '\n';
  }
  return out;
}

Result<CsvTable> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str());
}

Status WriteCsvFile(const std::string& path, const CsvTable& table) {
  std::error_code ec;
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) return Status::IOError("mkdir failed: " + ec.message());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << WriteCsv(table);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace seagull
