/// \file blob_ref.h
/// \brief `BlobRef`: a shared, immutable view of blob bytes that owns
/// its backing storage without saying what that storage is.
///
/// The data plane historically passed blobs around as
/// `shared_ptr<const std::string>` — which hard-codes "the bytes live
/// on the heap". The mmap-backed lake read path (store/mmap_blob.h)
/// needs the same shared-ownership pin over page-cache-backed mappings,
/// and the streaming decode cursor (telemetry/series_block.h) must not
/// care which one it was handed. `BlobRef` is that generalization: a
/// `string_view` of the bytes plus a type-erased `shared_ptr` keeping
/// whatever owns them alive.
///
/// Ownership states (DESIGN.md "memory-plane round 2"):
///   - empty      — default-constructed; no bytes, no owner. The cache
///                  miss sentinel.
///   - heap       — owner is a `shared_ptr<const std::string>` and the
///                  view aliases its contents. `heap()` recovers the
///                  typed pointer so legacy `GetShared` callers keep
///                  their zero-copy path.
///   - mapped     — owner is anything else (an `MmapBlob`); the view
///                  aliases bytes the owner keeps valid. `heap()` is
///                  null; materializing a string requires a copy.
///
/// A `BlobRef` held by a reader pins the backing storage past cache
/// eviction or writer invalidation, exactly as the cursor's
/// `shared_ptr<const string>` pin did before: eviction drops the
/// cache's reference, never the buffer (or the mapping).

#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace seagull {

/// \brief Shared immutable bytes with type-erased ownership.
class BlobRef {
 public:
  /// Empty ref: no bytes, no owner. `operator bool` is false.
  BlobRef() = default;

  /// Heap-backed ref aliasing `heap`'s contents. A null `heap` makes an
  /// empty ref.
  explicit BlobRef(std::shared_ptr<const std::string> heap) {
    if (heap != nullptr) {
      view_ = std::string_view(*heap);
      heap_ = std::move(heap);
      owner_ = heap_;
    }
  }

  /// Ref aliasing `bytes`, kept valid by `owner` (an `MmapBlob` or any
  /// other storage whose lifetime covers the view). `owner` must be
  /// non-null; the bytes may legitimately be empty (an empty blob).
  BlobRef(std::string_view bytes, std::shared_ptr<const void> owner)
      : view_(bytes), owner_(std::move(owner)) {}

  /// True when the ref owns backing storage (even for an empty blob).
  explicit operator bool() const { return owner_ != nullptr; }

  std::string_view view() const { return view_; }
  const char* data() const { return view_.data(); }
  size_t size() const { return view_.size(); }

  /// The heap buffer when heap-backed; null for empty or mapped refs.
  const std::shared_ptr<const std::string>& heap() const { return heap_; }

  /// True when backed by a non-heap owner (a mapping).
  bool mapped() const { return owner_ != nullptr && heap_ == nullptr; }

  /// The type-erased owner — what a pinning reader must keep alive.
  const std::shared_ptr<const void>& owner() const { return owner_; }

 private:
  std::string_view view_;
  std::shared_ptr<const std::string> heap_;  ///< set iff heap-backed
  std::shared_ptr<const void> owner_;        ///< set iff non-empty
};

}  // namespace seagull
