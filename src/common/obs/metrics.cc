#include "common/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "common/strings.h"

namespace seagull {

const std::vector<double>& Histogram::DefaultLatencyEdgesMicros() {
  static const std::vector<double>* edges = new std::vector<double>{
      50,     100,    250,    500,     1000,    2500,    5000,     10000,
      25000,  50000,  100000, 250000,  500000,  1000000, 2500000,  10000000};
  return *edges;
}

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  if (edges_.empty()) edges_ = DefaultLatencyEdgesMicros();
  std::sort(edges_.begin(), edges_.end());
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(edges_.size() + 1);
  for (size_t i = 0; i <= edges_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  // First bucket whose upper bound admits the value; +inf otherwise.
  size_t i = static_cast<size_t>(
      std::lower_bound(edges_.begin(), edges_.end(), value) -
      edges_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Quantile(double q) const {
  const int64_t total = Count();
  if (total <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(total);
  int64_t cumulative = 0;
  for (size_t i = 0; i <= edges_.size(); ++i) {
    const int64_t in_bucket = BucketCount(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      // Linear interpolation inside [lower, upper).
      const double lower = i == 0 ? 0.0 : edges_[i - 1];
      // The +inf bucket has no finite upper bound; report its lower edge.
      if (i == edges_.size()) return lower;
      const double upper = edges_[i];
      const double fraction =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, fraction));
    }
    cumulative += in_bucket;
  }
  return edges_.empty() ? 0.0 : edges_.back();
}

void Histogram::Reset() {
  for (size_t i = 0; i <= edges_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::string MetricSample::Key() const {
  std::string key = name;
  if (!labels.empty()) {
    key += '{';
    for (size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) key += ',';
      key += labels[i].first;
      key += '=';
      key += labels[i].second;
    }
    key += '}';
  }
  return key;
}

Json MetricsSnapshot::ToJson() const {
  Json counters = Json::MakeObject();
  Json gauges = Json::MakeObject();
  Json histograms = Json::MakeObject();
  for (const auto& s : samples) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        counters[s.Key()] = s.counter_value;
        break;
      case MetricSample::Kind::kGauge:
        gauges[s.Key()] = s.gauge_value;
        break;
      case MetricSample::Kind::kHistogram: {
        Json h = Json::MakeObject();
        h["count"] = s.count;
        h["sum"] = s.sum;
        h["p50"] = s.p50;
        h["p95"] = s.p95;
        h["p99"] = s.p99;
        Json buckets = Json::MakeArray();
        for (size_t i = 0; i < s.buckets.size(); ++i) {
          Json b = Json::MakeObject();
          b["le"] = i < s.edges.size() ? Json(s.edges[i]) : Json("inf");
          b["count"] = s.buckets[i];
          buckets.Append(std::move(b));
        }
        h["buckets"] = std::move(buckets);
        histograms[s.Key()] = std::move(h);
        break;
      }
    }
  }
  Json out = Json::MakeObject();
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["histograms"] = std::move(histograms);
  return out;
}

namespace {

/// `seagull.lake.op-micros` -> `seagull_lake_op_micros`.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return out;
}

std::string PromLabels(const MetricLabels& labels,
                       const std::string& extra_key = "",
                       const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += PromName(k) + "=\"" + v + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  std::string last_typed;
  for (const auto& s : samples) {
    const std::string prom = PromName(s.name);
    const char* type = s.kind == MetricSample::Kind::kCounter ? "counter"
                       : s.kind == MetricSample::Kind::kGauge ? "gauge"
                                                              : "histogram";
    if (prom != last_typed) {
      out += "# TYPE " + prom + " " + type + "\n";
      last_typed = prom;
    }
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        out += prom + PromLabels(s.labels) + " " +
               std::to_string(s.counter_value) + "\n";
        break;
      case MetricSample::Kind::kGauge:
        out += prom + PromLabels(s.labels) + " " +
               StringPrintf("%g", s.gauge_value) + "\n";
        break;
      case MetricSample::Kind::kHistogram: {
        int64_t cumulative = 0;
        for (size_t i = 0; i < s.buckets.size(); ++i) {
          cumulative += s.buckets[i];
          const std::string le =
              i < s.edges.size() ? StringPrintf("%g", s.edges[i]) : "+Inf";
          out += prom + "_bucket" + PromLabels(s.labels, "le", le) + " " +
                 std::to_string(cumulative) + "\n";
        }
        out += prom + "_sum" + PromLabels(s.labels) + " " +
               StringPrintf("%g", s.sum) + "\n";
        out += prom + "_count" + PromLabels(s.labels) + " " +
               std::to_string(s.count) + "\n";
        break;
      }
    }
  }
  return out;
}

MetricsSnapshot MetricsSnapshot::Without(
    const std::vector<std::string>& prefixes) const {
  MetricsSnapshot out;
  for (const auto& s : samples) {
    bool excluded = false;
    for (const auto& p : prefixes) {
      if (s.name.rfind(p, 0) == 0) {
        excluded = true;
        break;
      }
    }
    if (!excluded) out.samples.push_back(s);
  }
  return out;
}

std::map<std::string, int64_t> MetricsSnapshot::CounterValues() const {
  std::map<std::string, int64_t> out;
  for (const auto& s : samples) {
    if (s.kind == MetricSample::Kind::kCounter) out[s.Key()] = s.counter_value;
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static auto* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::MetricsRegistry() {
  shards_.reserve(kShards);
  for (int i = 0; i < kShards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

MetricsRegistry::Shard& MetricsRegistry::ShardOf(const std::string& name) {
  return *shards_[std::hash<std::string>{}(name) % kShards];
}

MetricsRegistry::Instrument* MetricsRegistry::Find(
    MetricSample::Kind kind, const std::string& name, MetricLabels labels,
    std::vector<double> edges) {
  std::sort(labels.begin(), labels.end());
  Shard& shard = ShardOf(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.instruments.find(std::make_pair(name, labels));
  if (it != shard.instruments.end()) return &it->second;
  // New label set: enforce the per-name cardinality cap. The unlabeled
  // instrument and the overflow child always fit.
  const bool is_overflow = labels.size() == 1 && labels[0].first == "overflow";
  if (!labels.empty() && !is_overflow &&
      shard.cardinality[name] >=
          max_cardinality_.load(std::memory_order_relaxed)) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    labels = {{"overflow", "true"}};
    auto of = shard.instruments.find(std::make_pair(name, labels));
    if (of != shard.instruments.end()) return &of->second;
  }
  Instrument inst;
  inst.kind = kind;
  switch (kind) {
    case MetricSample::Kind::kCounter:
      inst.counter = std::make_unique<Counter>();
      break;
    case MetricSample::Kind::kGauge:
      inst.gauge = std::make_unique<Gauge>();
      break;
    case MetricSample::Kind::kHistogram:
      inst.histogram = std::make_unique<Histogram>(std::move(edges));
      break;
  }
  ++shard.cardinality[name];
  auto emplaced = shard.instruments.emplace(
      std::make_pair(name, std::move(labels)), std::move(inst));
  return &emplaced.first->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     MetricLabels labels) {
  return Find(MetricSample::Kind::kCounter, name, std::move(labels), {})
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 MetricLabels labels) {
  return Find(MetricSample::Kind::kGauge, name, std::move(labels), {})
      ->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         MetricLabels labels,
                                         std::vector<double> edges) {
  return Find(MetricSample::Kind::kHistogram, name, std::move(labels),
              std::move(edges))
      ->histogram.get();
}

void MetricsRegistry::Reset() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& [key, inst] : shard->instruments) {
      switch (inst.kind) {
        case MetricSample::Kind::kCounter:
          inst.counter->Reset();
          break;
        case MetricSample::Kind::kGauge:
          inst.gauge->Reset();
          break;
        case MetricSample::Kind::kHistogram:
          inst.histogram->Reset();
          break;
      }
    }
  }
  overflow_.store(0, std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, inst] : shard->instruments) {
      MetricSample s;
      s.kind = inst.kind;
      s.name = key.first;
      s.labels = key.second;
      switch (inst.kind) {
        case MetricSample::Kind::kCounter:
          s.counter_value = inst.counter->Value();
          break;
        case MetricSample::Kind::kGauge:
          s.gauge_value = inst.gauge->Value();
          break;
        case MetricSample::Kind::kHistogram: {
          const Histogram& h = *inst.histogram;
          s.count = h.Count();
          s.sum = h.Sum();
          s.edges = h.edges();
          s.buckets.resize(s.edges.size() + 1);
          for (size_t i = 0; i <= s.edges.size(); ++i) {
            s.buckets[i] = h.BucketCount(i);
          }
          s.p50 = h.Quantile(0.50);
          s.p95 = h.Quantile(0.95);
          s.p99 = h.Quantile(0.99);
          break;
        }
      }
      snapshot.samples.push_back(std::move(s));
    }
  }
  std::sort(snapshot.samples.begin(), snapshot.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snapshot;
}

namespace {

/// Reads one "<field>: <n> kB" line of /proc/self/status; -1 if absent.
int64_t ReadProcStatusKb(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  const size_t field_len = std::strlen(field);
  char line[256];
  int64_t kb = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) != 0 ||
        line[field_len] != ':') {
      continue;
    }
    kb = std::strtoll(line + field_len + 1, nullptr, 10);
    break;
  }
  std::fclose(f);
  return kb;
}

}  // namespace

int64_t ReadPeakRssBytes() {
  const int64_t kb = ReadProcStatusKb("VmHWM");
  return kb < 0 ? -1 : kb * 1024;
}

int64_t ReadCurrentRssBytes() {
  const int64_t kb = ReadProcStatusKb("VmRSS");
  return kb < 0 ? -1 : kb * 1024;
}

bool ResetPeakRss() {
  // Writing "5" asks Linux to reset VmHWM (and peak VM size) to the
  // current values; see proc(5). After this, ReadPeakRssBytes() reports
  // the high-water mark since the reset.
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
}

bool TrimMallocArenas() {
#if defined(__GLIBC__)
  return malloc_trim(0) != 0;
#else
  return false;
#endif
}

int64_t SampleProcessRss() {
  const int64_t peak = ReadPeakRssBytes();
  const int64_t current = ReadCurrentRssBytes();
  auto& registry = MetricsRegistry::Global();
  if (peak >= 0) {
    registry.GetGauge("seagull.process.peak_rss_bytes")
        ->Max(static_cast<double>(peak));
  }
  if (current >= 0) {
    registry.GetGauge("seagull.process.rss_bytes")
        ->Set(static_cast<double>(current));
  }
  return peak;
}

}  // namespace seagull
