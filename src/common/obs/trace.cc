#include "common/obs/trace.h"

#include <algorithm>

#include "common/obs/clock.h"

namespace seagull {

namespace {
/// Innermost live span of the calling thread (0 = none).
thread_local int64_t tls_current_span = 0;
}  // namespace

TraceSink::TraceSink(int64_t capacity) : capacity_(capacity) {}

TraceSink& TraceSink::Global() {
  static auto* sink = new TraceSink();
  return *sink;
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  open_.clear();
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
  next_id_.store(1, std::memory_order_relaxed);
}

int64_t TraceSink::BeginSpan(const std::string& name,
                             const std::string& category,
                             int64_t parent_id) {
  if (!enabled()) return 0;
  const int64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  OpenSpan span;
  span.name = name;
  span.category = category;
  span.parent_id = parent_id;
  std::lock_guard<std::mutex> lock(mu_);
  if (parent_id != 0) {
    auto it = open_.find(parent_id);
    // A parent that already closed (or was never seen — tracing enabled
    // mid-flight) degrades to a root rather than a dangling edge.
    span.root_id = it != open_.end() ? it->second.root_id : id;
    if (it == open_.end()) span.parent_id = 0;
  } else {
    span.root_id = id;
  }
  open_.emplace(id, std::move(span));
  return id;
}

void TraceSink::EndSpan(int64_t id, int64_t start_micros,
                        std::vector<std::pair<std::string, std::string>> args) {
  if (id == 0) return;
  const int64_t end_micros = ObsClock::NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(id);
  if (it == open_.end()) return;  // Clear() raced an in-flight span
  if (static_cast<int64_t>(events_.size()) >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    open_.erase(it);
    return;
  }
  TraceEvent event;
  event.id = id;
  event.parent_id = it->second.parent_id;
  event.root_id = it->second.root_id;
  event.name = std::move(it->second.name);
  event.category = std::move(it->second.category);
  event.start_micros = start_micros;
  event.duration_micros =
      end_micros >= start_micros ? end_micros - start_micros : 0;
  event.args = std::move(args);
  open_.erase(it);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceSink::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

int64_t TraceSink::EventCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(events_.size());
}

Json TraceSink::ToChromeTrace() const {
  std::vector<TraceEvent> events = Events();
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_micros != b.start_micros) {
                return a.start_micros < b.start_micros;
              }
              return a.id < b.id;
            });
  // Rebase timestamps so the trace starts at t=0 regardless of process
  // uptime (and stays 0 under a frozen clock).
  int64_t base = 0;
  for (const auto& e : events) {
    if (base == 0 || e.start_micros < base) base = e.start_micros;
  }
  Json trace_events = Json::MakeArray();
  // One thread_name metadata record per span tree so Perfetto labels
  // each track with its root span (e.g. "region.det-a") instead of a
  // bare tid number.
  std::map<int64_t, std::string> track_names;
  for (const auto& e : events) {
    if (e.id == e.root_id) track_names[e.root_id] = e.name;
  }
  for (const auto& [tid, name] : track_names) {
    Json meta = Json::MakeObject();
    meta["name"] = "thread_name";
    meta["ph"] = "M";
    meta["pid"] = 1;
    meta["tid"] = tid;
    Json args = Json::MakeObject();
    args["name"] = name;
    meta["args"] = std::move(args);
    trace_events.Append(std::move(meta));
  }
  for (const auto& e : events) {
    Json ev = Json::MakeObject();
    ev["name"] = e.name;
    ev["cat"] = e.category;
    ev["ph"] = "X";  // complete event: ts + dur
    ev["ts"] = e.start_micros - base;
    ev["dur"] = e.duration_micros;
    ev["pid"] = 1;
    ev["tid"] = e.root_id;
    Json args = Json::MakeObject();
    args["span_id"] = e.id;
    args["parent_id"] = e.parent_id;
    for (const auto& [k, v] : e.args) args[k] = v;
    ev["args"] = std::move(args);
    trace_events.Append(std::move(ev));
  }
  Json out = Json::MakeObject();
  out["traceEvents"] = std::move(trace_events);
  out["displayTimeUnit"] = "ms";
  return out;
}

std::vector<std::string> TraceSink::TreeDigest() const {
  std::vector<TraceEvent> events = Events();
  std::map<int64_t, std::string> names;
  for (const auto& e : events) names[e.id] = e.name;
  std::vector<std::string> lines;
  lines.reserve(events.size());
  for (const auto& e : events) {
    std::string parent =
        e.parent_id == 0 ? "-" : names.count(e.parent_id) != 0
                                     ? names[e.parent_id]
                                     : "?";
    std::string line = parent + " > " + e.name;
    for (const auto& [k, v] : e.args) line += " " + k + "=" + v;
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

ScopedSpan::ScopedSpan(std::string name, std::string category,
                       int64_t parent_id) {
  TraceSink& sink = TraceSink::Global();
  if (!sink.enabled()) return;
  if (parent_id == kInheritParent) parent_id = tls_current_span;
  start_micros_ = ObsClock::NowMicros();
  id_ = sink.BeginSpan(name, category, parent_id);
  prev_current_ = tls_current_span;
  tls_current_span = id_;
}

ScopedSpan::~ScopedSpan() {
  if (id_ == 0) return;
  tls_current_span = prev_current_;
  TraceSink::Global().EndSpan(id_, start_micros_, std::move(args_));
}

void ScopedSpan::AddArg(const std::string& key, const std::string& value) {
  if (id_ == 0) return;
  args_.emplace_back(key, value);
}

int64_t ScopedSpan::Current() { return tls_current_span; }

}  // namespace seagull
