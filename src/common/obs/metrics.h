/// \file metrics.h
/// \brief Typed, lock-sharded metrics registry.
///
/// The fleet-scale half of §6's operations story: every hot layer
/// (stores, thread pool, pipeline modules, forecast train/infer, retry
/// and fault paths) publishes counters, gauges, and fixed-bucket
/// histograms into one process-wide registry, named
/// `seagull.<layer>.<metric>` with optional `{key=value}` labels.
///
/// Design constraints, in order:
///  - **Hot-path cost**: instruments are resolved once (`GetCounter`
///    returns a stable pointer for the registry's lifetime) and updated
///    with relaxed atomics — no locks on the increment path. Lookup
///    itself shards its lock by name hash so unrelated layers don't
///    contend.
///  - **Observational only**: nothing reads a metric to make a decision;
///    scheduling, retry jitter, and model fitting never touch this
///    layer. That keeps the fleet determinism contract intact — a
///    frozen clock (see obs/clock.h) makes even histogram bucket
///    contents byte-stable across jobs=1 and jobs=8.
///  - **Bounded cardinality**: a per-name cap on label sets (default
///    256) routes runaway label values into one `{overflow="true"}`
///    child instead of growing without bound.
///
/// Exporters: `MetricsSnapshot::ToJson()` (the CLI's `--metrics-out`
/// and the bench trajectory files) and `ToPrometheusText()` (the
/// scrape-endpoint format, `seagull_lake_ops{op="get"} 42`).

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"

namespace seagull {

/// Label set of one instrument, canonicalized (sorted by key) by the
/// registry on lookup.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonically increasing event count.
class Counter {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Last-write-wins instantaneous value (queue depth, worker
/// count). `Max` keeps a high-water mark instead.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  /// Raises the gauge to `v` if below it (high-water mark).
  void Max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket histogram with lock-free observation.
///
/// Buckets are cumulative-upper-bound style (Prometheus `le`): an
/// observation lands in the first bucket whose edge is >= the value,
/// with an implicit +inf bucket at the end. Quantiles are estimated by
/// linear interpolation inside the containing bucket — good enough for
/// p50/p95/p99 dashboards, and deterministic given deterministic
/// observations.
class Histogram {
 public:
  /// Microsecond latency edges spanning 50us..10s.
  static const std::vector<double>& DefaultLatencyEdgesMicros();

  explicit Histogram(std::vector<double> edges);

  void Observe(double value);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& edges() const { return edges_; }
  /// Count in bucket `i` (i == edges().size() is the +inf bucket).
  int64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Estimated quantile, q in [0, 1]; 0 when empty.
  double Quantile(double q) const;
  void Reset();

 private:
  std::vector<double> edges_;  ///< ascending upper bounds
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;  ///< edges + inf
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// \brief One instrument's state at snapshot time.
struct MetricSample {
  enum class Kind : int8_t { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  MetricLabels labels;
  int64_t counter_value = 0;
  double gauge_value = 0.0;
  // Histogram fields.
  int64_t count = 0;
  double sum = 0.0;
  std::vector<double> edges;
  std::vector<int64_t> buckets;  ///< edges.size() + 1 (+inf last)
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;

  /// `name{k=v,...}` — the flat key used by the JSON exporter and by
  /// snapshot diffs in tests.
  std::string Key() const;
};

/// \brief Point-in-time copy of every registered instrument, sorted by
/// `Key()` so two snapshots of identical state serialize identically.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  Json ToJson() const;
  /// Prometheus text exposition (names sanitized to [a-z0-9_]).
  std::string ToPrometheusText() const;
  /// Copy without samples whose name starts with any prefix — the
  /// determinism tests drop `seagull.pool.` (worker/steal counts are
  /// schedule-dependent by design).
  MetricsSnapshot Without(const std::vector<std::string>& prefixes) const;
  /// Counter samples only, as flat key -> value (the perf-budget and
  /// determinism currencies).
  std::map<std::string, int64_t> CounterValues() const;
};

/// \brief Process-wide instrument registry.
///
/// Thread-safe. Instruments are created on first lookup and live until
/// process exit; `Reset()` zeroes values but never invalidates pointers,
/// so layers may cache their instruments across bench phases and test
/// cases.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry();

  Counter* GetCounter(const std::string& name, MetricLabels labels = {});
  Gauge* GetGauge(const std::string& name, MetricLabels labels = {});
  /// `edges` is honored on first registration of (name, labels);
  /// subsequent lookups return the existing instrument. Empty edges
  /// mean `Histogram::DefaultLatencyEdgesMicros()`.
  Histogram* GetHistogram(const std::string& name, MetricLabels labels = {},
                          std::vector<double> edges = {});

  /// Zeroes every instrument (registrations and pointers survive).
  void Reset();

  MetricsSnapshot Snapshot() const;

  /// Label-set cap per metric name; lookups beyond it return the
  /// `{overflow="true"}` child and count into `OverflowCount()`.
  void SetMaxCardinality(int64_t per_name) {
    max_cardinality_.store(per_name, std::memory_order_relaxed);
  }
  int64_t OverflowCount() const {
    return overflow_.load(std::memory_order_relaxed);
  }

 private:
  struct Instrument {
    MetricSample::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Shard {
    mutable std::mutex mu;
    std::map<std::pair<std::string, MetricLabels>, Instrument> instruments;
    std::map<std::string, int64_t> cardinality;  ///< label sets per name
  };

  Shard& ShardOf(const std::string& name);
  /// Finds or creates (name, labels) of `kind`, applying the
  /// cardinality cap; `edges` is only read for new histograms.
  Instrument* Find(MetricSample::Kind kind, const std::string& name,
                   MetricLabels labels, std::vector<double> edges);

  static constexpr int kShards = 16;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> max_cardinality_{256};
  std::atomic<int64_t> overflow_{0};
};

/// \name Process memory plane.
///
/// The fleet-scale memory contract ("a 100k-server run completes with
/// bounded peak RSS") is gated on the kernel's own accounting, not on
/// allocator introspection: `VmHWM`/`VmRSS` from /proc/self/status.
/// Values are bytes; -1 means the platform does not expose them (the
/// gauges are then simply not written, never written as garbage).
/// @{

/// Peak resident set size of this process (`VmHWM`), in bytes.
int64_t ReadPeakRssBytes();

/// Current resident set size of this process (`VmRSS`), in bytes.
int64_t ReadCurrentRssBytes();

/// Resets the kernel's peak-RSS watermark (`/proc/self/clear_refs`),
/// so a bench phase can measure its own high-water mark instead of
/// inheriting setup allocations. Returns false where unsupported; the
/// watermark then stays cumulative, which only ever over-reports.
bool ResetPeakRss();

/// Samples both values into the global registry:
/// `seagull.process.peak_rss_bytes` (high-water: `Gauge::Max`) and
/// `seagull.process.rss_bytes` (last sample). Call at phase boundaries
/// — shard retirement in the fleet runner, module completion in
/// ingestion, bench phase edges — so snapshots carry the memory
/// trajectory without a sampler thread (which would break the
/// determinism contract). Returns the sampled peak, -1 if unavailable.
int64_t SampleProcessRss();

/// Returns freed heap pages to the kernel (`malloc_trim(0)` on glibc;
/// a no-op elsewhere, returning false). Call before an RSS sample
/// whose job is to observe *live* memory: without the trim, pages the
/// allocator retains for reuse after a retire/drop keep the sample at
/// its historical high even though nothing references them.
bool TrimMallocArenas();

/// @}

}  // namespace seagull
