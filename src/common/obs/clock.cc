#include "common/obs/clock.h"

#include <chrono>

namespace seagull {

std::atomic<bool> ObsClock::frozen_{false};
std::atomic<int64_t> ObsClock::frozen_micros_{0};

int64_t ObsClock::NowMicros() {
  if (frozen_.load(std::memory_order_relaxed)) {
    return frozen_micros_.load(std::memory_order_relaxed);
  }
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace seagull
