/// \file trace.h
/// \brief Tracing spans over a bounded in-memory sink.
///
/// Answers "where did this run spend its time": the fleet runner opens
/// one span per execution, each region pipeline nests under it, each
/// module under its region. Spans time themselves on `ObsClock`
/// (observational only — freezing the clock zeroes every duration
/// without changing the span *tree*, which is what the determinism
/// tests compare).
///
/// Parent/child nesting is automatic within a thread (a thread-local
/// current-span cursor) and explicit across threads: a parent span's id
/// travels into pool tasks by value, so the fleet span really is the
/// parent of region spans that ran on other workers.
///
/// The sink is bounded: beyond `capacity` completed spans new ones are
/// counted into `dropped()` and discarded — tracing a fleet must never
/// OOM the fleet. `ToChromeTrace()` serializes to the Chrome
/// `trace_event` JSON array format; the file loads directly in
/// `chrome://tracing` and https://ui.perfetto.dev. Each span tree gets
/// its own track (`tid` = root span id) named after the root span.
///
/// Disabled by default — one relaxed atomic load per instrumented
/// scope. Tests enable it with `ScopedTracing`; the CLI with
/// `--trace-out`.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"

namespace seagull {

/// \brief One completed span.
struct TraceEvent {
  int64_t id = 0;
  int64_t parent_id = 0;  ///< 0 = root
  int64_t root_id = 0;    ///< id of the tree's root (its own id for roots)
  std::string name;       ///< e.g. "module.training"
  std::string category;   ///< e.g. "pipeline"
  int64_t start_micros = 0;
  int64_t duration_micros = 0;
  /// Flat string args rendered into the Chrome event's "args" object.
  std::vector<std::pair<std::string, std::string>> args;
};

/// \brief Bounded, thread-safe collector of completed spans.
class TraceSink {
 public:
  explicit TraceSink(int64_t capacity = 1 << 16);

  /// The process-wide sink every `ScopedSpan` reports to.
  static TraceSink& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Discards all events, open-span bookkeeping, and the drop count.
  void Clear();

  /// Completed spans, in completion order (schedule-dependent under
  /// parallel execution — compare trees, not order).
  std::vector<TraceEvent> Events() const;
  int64_t EventCount() const;
  /// Spans discarded because the sink was full.
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Chrome trace_event JSON: {"traceEvents": [...], "displayTimeUnit":
  /// "ms"}. Events are sorted by (start, id) for a stable file.
  Json ToChromeTrace() const;

  /// The span tree as sorted "parent-name > name" lines with counts —
  /// the structural digest the determinism tests diff (ids, durations,
  /// and thread assignment excluded by construction).
  std::vector<std::string> TreeDigest() const;

 private:
  friend class ScopedSpan;

  /// Returns the new span id, or 0 when disabled.
  int64_t BeginSpan(const std::string& name, const std::string& category,
                    int64_t parent_id);
  void EndSpan(int64_t id, int64_t start_micros,
               std::vector<std::pair<std::string, std::string>> args);

  struct OpenSpan {
    std::string name;
    std::string category;
    int64_t parent_id = 0;
    int64_t root_id = 0;
  };

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> next_id_{1};
  std::atomic<int64_t> dropped_{0};
  int64_t capacity_;
  mutable std::mutex mu_;
  std::map<int64_t, OpenSpan> open_;
  std::vector<TraceEvent> events_;
};

/// \brief RAII span: begins on construction, completes on destruction.
///
/// With no explicit parent the span nests under the calling thread's
/// innermost live `ScopedSpan`. Pass `parent_id` (from `id()` on
/// another thread's span) to stitch trees across pool workers.
class ScopedSpan {
 public:
  static constexpr int64_t kInheritParent = -1;

  explicit ScopedSpan(std::string name, std::string category = "seagull",
                      int64_t parent_id = kInheritParent);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// This span's id; 0 when tracing is disabled (safe to pass around —
  /// children of 0 are roots).
  int64_t id() const { return id_; }

  /// Attaches a key/value to the completed event (e.g. attempts=2).
  void AddArg(const std::string& key, const std::string& value);

  /// The calling thread's innermost live span id; 0 if none.
  static int64_t Current();

 private:
  int64_t id_ = 0;
  int64_t prev_current_ = 0;
  int64_t start_micros_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// \brief RAII enablement of the global sink for one test scope:
/// clears + enables on construction, disables on destruction (events
/// survive until the next `ScopedTracing` or explicit `Clear`).
class ScopedTracing {
 public:
  ScopedTracing() {
    TraceSink::Global().Clear();
    TraceSink::Global().Enable();
  }
  ~ScopedTracing() { TraceSink::Global().Disable(); }

  ScopedTracing(const ScopedTracing&) = delete;
  ScopedTracing& operator=(const ScopedTracing&) = delete;

  TraceSink& sink() { return TraceSink::Global(); }
};

}  // namespace seagull
