/// \file clock.h
/// \brief Observational clock for metrics and tracing.
///
/// All timing in the observability layer is *observational only*: spans
/// and latency histograms read this clock, but nothing in scheduling,
/// retry jitter, or model fitting ever does. That one-way dependency is
/// what lets the determinism tests freeze time: with `ScopedFrozenClock`
/// every duration collapses to zero, so trace *structure* (span tree,
/// event counts) and metric *values* (op counters, bucket counts — all
/// zeros land in the first bucket) are byte-stable across jobs=1 and
/// jobs=8, while unfrozen production runs still record real latencies.

#pragma once

#include <atomic>
#include <cstdint>

namespace seagull {

/// \brief Monotonic microsecond clock with a freeze switch.
class ObsClock {
 public:
  /// Microseconds from the process-wide monotonic clock, or the frozen
  /// value while a `ScopedFrozenClock` is alive. Never goes backwards
  /// within one regime.
  static int64_t NowMicros();

  /// True while a `ScopedFrozenClock` is alive.
  static bool frozen() {
    return frozen_.load(std::memory_order_relaxed);
  }

 private:
  friend class ScopedFrozenClock;
  static std::atomic<bool> frozen_;
  static std::atomic<int64_t> frozen_micros_;
};

/// \brief RAII test hook: freezes `ObsClock` at a fixed microsecond
/// value for the current scope. Freezing is process-wide (the clock is
/// static), so tests that freeze must not run concurrently with tests
/// that assert real latencies — gtest's default serial execution within
/// one binary guarantees that.
class ScopedFrozenClock {
 public:
  explicit ScopedFrozenClock(int64_t micros = 0) {
    ObsClock::frozen_micros_.store(micros, std::memory_order_relaxed);
    ObsClock::frozen_.store(true, std::memory_order_relaxed);
  }
  ~ScopedFrozenClock() {
    ObsClock::frozen_.store(false, std::memory_order_relaxed);
  }

  ScopedFrozenClock(const ScopedFrozenClock&) = delete;
  ScopedFrozenClock& operator=(const ScopedFrozenClock&) = delete;
};

}  // namespace seagull
