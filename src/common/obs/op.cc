#include "common/obs/op.h"

#include "common/obs/clock.h"
#include "common/obs/metrics.h"

namespace seagull {

ObsOp::ObsOp(std::string family, std::string op)
    : family_(std::move(family)), op_(std::move(op)),
      start_micros_(ObsClock::NowMicros()) {}

ObsOp::~ObsOp() {
  if (!done_) Finish(false);
}

Status ObsOp::Done(Status status) {
  Finish(status.ok());
  return status;
}

void ObsOp::Finish(bool ok) {
  if (done_) return;
  done_ = true;
  auto& registry = MetricsRegistry::Global();
  const MetricLabels labels{{"op", op_}};
  registry.GetCounter(family_ + ".ops", labels)->Increment();
  if (!ok) registry.GetCounter(family_ + ".errors", labels)->Increment();
  registry.GetHistogram(family_ + ".op_micros", labels)
      ->Observe(static_cast<double>(ObsClock::NowMicros() - start_micros_));
}

}  // namespace seagull
