/// \file op.h
/// \brief One-liner instrumentation for store-style operations.
///
/// `ObsOp op("seagull.lake", "put"); return op.Done(<body>);` records
/// three instruments for the family/op pair:
///   - `<family>.ops{op=<op>}`        counter, every call
///   - `<family>.errors{op=<op>}`     counter, non-OK outcomes
///   - `<family>.op_micros{op=<op>}`  latency histogram (ObsClock)
///
/// If `Done` is never reached (an exception unwound through the body),
/// the destructor records the call as an error so op counts always add
/// up to call counts.

#pragma once

#include <string>
#include <utility>

#include "common/result.h"

namespace seagull {

/// \brief Times and counts one operation into the global registry.
class ObsOp {
 public:
  ObsOp(std::string family, std::string op);
  ~ObsOp();

  ObsOp(const ObsOp&) = delete;
  ObsOp& operator=(const ObsOp&) = delete;

  /// Records the outcome and passes it through.
  Status Done(Status status);
  template <typename T>
  Result<T> Done(Result<T> result) {
    Finish(result.status().ok());
    return result;
  }

 private:
  void Finish(bool ok);

  std::string family_;
  std::string op_;
  int64_t start_micros_;
  bool done_ = false;
};

}  // namespace seagull
