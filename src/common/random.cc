#include "common/random.h"

#include <cmath>

namespace seagull {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  has_spare_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53-bit mantissa from the top bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Next() % span);
}

double Rng::Gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * m;
  has_spare_ = true;
  return u * m;
}

double Rng::Gaussian(double mu, double sigma) { return mu + sigma * Gaussian(); }

bool Rng::Chance(double p) { return Uniform() < p; }

double Rng::Exponential(double mean) {
  double u;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Rng Rng::Fork(uint64_t salt) const {
  uint64_t mix = s_[0] ^ Rotl(salt * 0x9e3779b97f4a7c15ULL, 31);
  return Rng(mix);
}

uint64_t Rng::HashString(const std::string& s) {
  // FNV-1a.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace seagull
