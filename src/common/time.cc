#include "common/time.h"

#include <cstdio>

namespace seagull {

const char* DayOfWeekName(DayOfWeek d) {
  switch (d) {
    case DayOfWeek::kMonday:
      return "Monday";
    case DayOfWeek::kTuesday:
      return "Tuesday";
    case DayOfWeek::kWednesday:
      return "Wednesday";
    case DayOfWeek::kThursday:
      return "Thursday";
    case DayOfWeek::kFriday:
      return "Friday";
    case DayOfWeek::kSaturday:
      return "Saturday";
    case DayOfWeek::kSunday:
      return "Sunday";
  }
  return "Unknown";
}

std::string FormatMinute(MinuteStamp t) {
  const int64_t week = WeekIndex(t);
  const char* day = DayOfWeekName(DayOfWeekOf(t));
  const int64_t mod = MinuteOfDay(t);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "W%lld %.3s %02lld:%02lld",
                static_cast<long long>(week), day,
                static_cast<long long>(mod / kMinutesPerHour),
                static_cast<long long>(mod % kMinutesPerHour));
  return buf;
}

std::string FormatTimeOfDay(int64_t minute_of_day) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%02lld:%02lld",
                static_cast<long long>(minute_of_day / kMinutesPerHour),
                static_cast<long long>(minute_of_day % kMinutesPerHour));
  return buf;
}

}  // namespace seagull
