#include "parallel/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "common/obs/metrics.h"

namespace seagull {

namespace {

/// Process-wide pool instruments, resolved once. Submission/steal/queue
/// counts are schedule-dependent by design; the determinism suites
/// exclude the `seagull.pool.` prefix when diffing snapshots.
struct PoolMetrics {
  Counter* submitted;
  Counter* executed;
  Counter* stolen;
  Gauge* queue_peak;
  Gauge* workers;
};

PoolMetrics& GetPoolMetrics() {
  static PoolMetrics* m = [] {
    auto& reg = MetricsRegistry::Global();
    return new PoolMetrics{
        reg.GetCounter("seagull.pool.submitted"),
        reg.GetCounter("seagull.pool.executed"),
        reg.GetCounter("seagull.pool.stolen"),
        reg.GetGauge("seagull.pool.queue_peak"),
        reg.GetGauge("seagull.pool.workers"),
    };
  }();
  return *m;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 4;
  }
  shards_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  GetPoolMetrics().workers->Max(static_cast<double>(num_threads));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> fut = packaged->get_future();
  const size_t shard =
      submit_cursor_.fetch_add(1) %
      shards_.size();
  // Count before publishing so `queued_` never under-reports: a task
  // visible in a shard always has its count already registered.
  const int64_t depth = queued_.fetch_add(1) + 1;
  PoolMetrics& metrics = GetPoolMetrics();
  metrics.submitted->Increment();
  metrics.queue_peak->Max(static_cast<double>(depth));
  {
    std::lock_guard<std::mutex> lock(shards_[shard]->mu);
    shards_[shard]->tasks.emplace_back([packaged] { (*packaged)(); });
  }
  {
    // Empty critical section pairs with the sleep path: a worker that
    // saw no work re-checks `queued_` under `mu_` before sleeping.
    std::lock_guard<std::mutex> lock(mu_);
  }
  cv_.notify_one();
  return fut;
}

bool ThreadPool::TryAcquire(int home, std::function<void()>* task) {
  const int n = static_cast<int>(shards_.size());
  for (int i = 0; i < n; ++i) {
    Shard& shard = *shards_[static_cast<size_t>((home + i) % n)];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.tasks.empty()) continue;
    if (i == 0) {  // own shard: FIFO
      *task = std::move(shard.tasks.front());
      shard.tasks.pop_front();
    } else {  // steal from the back to reduce contention with the owner
      *task = std::move(shard.tasks.back());
      shard.tasks.pop_back();
      GetPoolMetrics().stolen->Increment();
    }
    // active_ rises before queued_ falls so (queued_ + active_) never
    // dips to zero while a task is in hand (WaitIdle's predicate).
    active_.fetch_add(1);
    queued_.fetch_sub(1);
    GetPoolMetrics().executed->Increment();
    return true;
  }
  return false;
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  const int home = static_cast<int>(
      submit_cursor_.load() % shards_.size());
  if (!TryAcquire(home, &task)) return false;
  task();  // packaged_task: exceptions land in the submitter's future
  if (active_.fetch_sub(1) == 1 &&
      queued_.load() == 0) {
    std::lock_guard<std::mutex> lock(mu_);
    idle_cv_.notify_all();
  }
  return true;
}

void ThreadPool::HelpWhileWaiting(std::future<void>& fut) {
  using namespace std::chrono_literals;
  while (fut.wait_for(0s) != std::future_status::ready) {
    if (!RunOneTask()) fut.wait_for(200us);
  }
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return queued_.load() == 0 &&
           active_.load() == 0;
  });
}

void ThreadPool::WorkerLoop(int home_shard) {
  while (true) {
    std::function<void()> task;
    if (TryAcquire(home_shard, &task)) {
      task();
      if (active_.fetch_sub(1) == 1 &&
          queued_.load() == 0) {
        std::lock_guard<std::mutex> lock(mu_);
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] {
      return stop_ || queued_.load() > 0;
    });
    if (stop_ && queued_.load() == 0) return;
  }
}

namespace {

/// Shared state of one chunked loop. Kept alive by shared_ptr so helper
/// tasks that start after the caller has already returned (possible when
/// the queue is deep) find only an exhausted cursor, never freed memory.
struct LoopState {
  std::function<void(int64_t, int64_t)> body;
  int64_t n = 0;
  int64_t grain = 1;
  CancellationToken* cancel = nullptr;
  std::atomic<int64_t> cursor{0};
  /// Participants currently inside the claim loop. The caller's final
  /// wait on busy_ == 0 is what guarantees no chunk body can still be
  /// running (or start) once ParallelForChunked returns.
  std::atomic<int64_t> busy{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::exception_ptr first_error;
  std::condition_variable done_cv;
};

void RunChunks(const std::shared_ptr<LoopState>& state) {
  state->busy.fetch_add(1);
  while (!state->failed.load() &&
         !(state->cancel != nullptr && state->cancel->cancelled())) {
    const int64_t begin =
        state->cursor.fetch_add(state->grain);
    if (begin >= state->n) break;
    const int64_t end = std::min(begin + state->grain, state->n);
    try {
      state->body(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->first_error == nullptr) {
        state->first_error = std::current_exception();
      }
      state->failed.store(true);
    }
  }
  state->busy.fetch_sub(1);
  {
    std::lock_guard<std::mutex> lock(state->mu);
  }
  state->done_cv.notify_all();
}

}  // namespace

void ParallelForChunked(
    ThreadPool* pool, int64_t n, int64_t grain,
    const std::function<void(int64_t, int64_t)>& body,
    CancellationToken* cancel) {
  if (n <= 0) return;
  const int threads = pool != nullptr ? pool->num_threads() : 1;
  if (grain <= 0) {
    grain = std::max<int64_t>(1, n / (static_cast<int64_t>(threads) * 8));
  }
  const int64_t num_chunks = (n + grain - 1) / grain;
  if (threads <= 1 || num_chunks == 1) {
    // Sequential path: same chunking, exception, and cancellation
    // semantics without dispatch.
    for (int64_t begin = 0; begin < n; begin += grain) {
      if (cancel != nullptr && cancel->cancelled()) return;
      body(begin, std::min(begin + grain, n));
    }
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->body = body;
  state->n = n;
  state->grain = grain;
  state->cancel = cancel;

  const int64_t helpers =
      std::min<int64_t>(threads, num_chunks - 1);  // caller takes a share
  for (int64_t h = 0; h < helpers; ++h) {
    pool->Submit([state] { RunChunks(state); });
  }
  RunChunks(state);

  // Foreclose any chunk claims by helpers that have not started yet
  // (relevant when the loop stopped early on failure or cancellation);
  // claims already made are covered by the busy counter below.
  state->cursor.store(n);
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock, [&] {
      return state->busy.load() == 0;
    });
    if (state->first_error != nullptr) {
      std::rethrow_exception(state->first_error);
    }
  }
}

void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t)>& fn,
                 CancellationToken* cancel) {
  ParallelForChunked(
      pool, n, /*grain=*/0,
      [&fn](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) fn(i);
      },
      cancel);
}

void SequentialFor(int64_t n, const std::function<void(int64_t)>& fn) {
  for (int64_t i = 0; i < n; ++i) fn(i);
}

}  // namespace seagull
