#include "parallel/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace seagull {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 4;
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> fut = packaged->get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back([packaged] { (*packaged)(); });
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  const int threads = pool->num_threads();
  if (threads <= 1 || n == 1) {
    SequentialFor(n, fn);
    return;
  }
  auto cursor = std::make_shared<std::atomic<int64_t>>(0);
  // Chunk size balances dispatch overhead against load imbalance.
  const int64_t chunk =
      std::max<int64_t>(1, n / (static_cast<int64_t>(threads) * 8));
  std::vector<std::future<void>> futs;
  futs.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    futs.push_back(pool->Submit([cursor, chunk, n, &fn] {
      while (true) {
        int64_t begin = cursor->fetch_add(chunk);
        if (begin >= n) return;
        int64_t end = std::min(begin + chunk, n);
        for (int64_t i = begin; i < end; ++i) fn(i);
      }
    }));
  }
  for (auto& f : futs) f.get();
}

void SequentialFor(int64_t n, const std::function<void(int64_t)>& fn) {
  for (int64_t i = 0; i < n; ++i) fn(i);
}

}  // namespace seagull
