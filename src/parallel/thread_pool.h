/// \file thread_pool.h
/// \brief Work-stealing worker pool — the library's Dask stand-in.
///
/// The paper partitions pipeline work per server and runs it on Dask
/// workers (§2.1, §6.1). Here a sharded task pool provides the same
/// partition-per-server parallelism for accuracy evaluation, model
/// training, inference, and the fleet runner that executes many
/// per-region pipelines concurrently.
///
/// Design (see DESIGN.md "Fleet execution engine"):
///  - Each worker owns a deque shard. `Submit` round-robins tasks across
///    shards; a worker pops from the front of its own shard and steals
///    from the back of the others, so unrelated submissions rarely
///    contend on one lock.
///  - Exceptions thrown by tasks propagate: through the future returned
///    by `Submit`, and out of `ParallelFor`/`ParallelForChunked` (the
///    first exception wins; remaining chunks are abandoned).
///  - Loops are cooperative: a `CancellationToken` stops further chunks
///    from being claimed without tearing down the pool.
///  - Loop callers participate: the thread calling `ParallelFor` claims
///    chunks like any worker, so nested parallelism (a pool task running
///    its own `ParallelFor` on the same pool) cannot deadlock — with
///    zero free workers the caller simply drains the range itself.

#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace seagull {

/// \brief Cooperative cancellation flag shared between a loop's caller
/// and its workers. Cancelling stops new chunks from being claimed;
/// chunks already running finish normally.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// \brief A fixed pool of worker threads over sharded work-stealing
/// deques.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; <= 0 means hardware
  /// concurrency, with a fallback of 4 when the hardware cannot tell).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; the future resolves when it completes and
  /// rethrows anything the task threw.
  std::future<void> Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void WaitIdle();

  /// Runs one queued task on the calling thread if any is available.
  /// Returns false when every shard is empty. This is how loop callers
  /// and nested waiters help instead of blocking.
  bool RunOneTask();

  /// Blocks until `fut` is ready, executing queued tasks on the calling
  /// thread in the meantime. Safe to call from inside a pool task —
  /// waiting on work that sits behind you in the queue makes progress
  /// instead of deadlocking.
  void HelpWhileWaiting(std::future<void>& fut);

 private:
  struct Shard {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(int home_shard);
  /// Pops from `home`'s front, else steals from the back of the others.
  bool TryAcquire(int home, std::function<void()>* task);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> submit_cursor_{0};
  std::atomic<int64_t> queued_{0};
  std::atomic<int64_t> active_{0};
  std::mutex mu_;  // sleep/wake + idle coordination only
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  bool stop_ = false;
};

/// \brief Runs `body(begin, end)` over disjoint chunks covering [0, n).
///
/// `grain` caps the chunk size (<= 0 picks one that balances dispatch
/// overhead against load imbalance, as the paper's regions range from
/// hundreds of kilobytes to gigabytes). The calling thread participates.
/// If any chunk throws, the loop stops claiming, the first exception is
/// rethrown here, and the pool remains usable. If `cancel` is cancelled,
/// remaining chunks are skipped and the call returns normally.
///
/// Determinism contract: every index in [0, n) is visited exactly once
/// (absent exception/cancellation); which thread visits it is
/// unspecified, so bodies must only write state owned by their indices.
void ParallelForChunked(
    ThreadPool* pool, int64_t n, int64_t grain,
    const std::function<void(int64_t, int64_t)>& body,
    CancellationToken* cancel = nullptr);

/// \brief Runs `fn(i)` for i in [0, n) across a pool (auto grain).
void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t)>& fn,
                 CancellationToken* cancel = nullptr);

/// Single-threaded reference loop with the same signature, for the
/// Fig. 12(b) single-vs-parallel comparison.
void SequentialFor(int64_t n, const std::function<void(int64_t)>& fn);

}  // namespace seagull
