/// \file thread_pool.h
/// \brief Fixed-size worker pool — the library's Dask stand-in.
///
/// The paper partitions pipeline work per server and runs it on Dask
/// workers (§2.1, §6.1). Here a plain task-queue pool provides the same
/// partition-per-server parallelism for accuracy evaluation, model
/// training, and the benchmark harness.

#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace seagull {

/// \brief A fixed pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; 0 means hardware concurrency).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; the future resolves when it completes.
  std::future<void> Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void WaitIdle();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  int active_ = 0;
  bool stop_ = false;
};

/// \brief Runs `fn(i)` for i in [0, n) across a pool.
///
/// Work is handed out in contiguous chunks via an atomic cursor so that
/// per-server costs that vary widely (the paper's regions range from
/// hundreds of kilobytes to gigabytes) still balance.
void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t)>& fn);

/// Single-threaded reference loop with the same signature, for the
/// Fig. 12(b) single-vs-parallel comparison.
void SequentialFor(int64_t n, const std::function<void(int64_t)>& fn);

}  // namespace seagull
