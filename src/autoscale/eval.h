/// \file eval.h
/// \brief Appendix A model comparison: Mean NRMSE / MASE and runtimes
/// (Figures 16 and 17) for 24h-ahead SQL database load prediction.

#pragma once

#include <string>
#include <vector>

#include "autoscale/sql_fleet.h"
#include "common/result.h"

namespace seagull {

/// \brief Per-model aggregate over the fleet.
struct AutoscaleModelResult {
  std::string model;
  int64_t databases_evaluated = 0;
  double mean_nrmse = 0.0;
  double mean_mase = 0.0;
  double train_millis = 0.0;      ///< total fitting time
  double inference_millis = 0.0;  ///< total forecasting time
  double accuracy_millis = 0.0;   ///< total metric-computation time
};

/// \brief Evaluation setup.
struct AutoscaleEvalOptions {
  /// Train on one week of history per database (§A.3), then predict the
  /// following day.
  int64_t train_week = 2;  ///< history week index used for fitting
  /// Models evaluated; empty means the paper's Appendix set.
  std::vector<std::string> models;
  /// Cap on databases per model, to bound expensive baselines (ARIMA).
  int64_t max_databases = 0;  ///< 0 = all
};

/// Runs the Figure 16/17 evaluation over the SQL fleet.
Result<std::vector<AutoscaleModelResult>> EvaluateAutoscaleModels(
    const SqlFleet& fleet, const AutoscaleEvalOptions& options = {});

}  // namespace seagull
