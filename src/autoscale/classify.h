/// \file classify.h
/// \brief Definition 10: stable vs unstable SQL databases (Appendix A.1).
///
/// "A stable database is defined as a database whose variation does not
/// exceed one standard deviation for the last three days in the period
/// evaluated." We read the deviation scale as the series' short-term
/// noise (lag-1 successive-difference estimator): over the last three
/// days, day-level means must stay at noise scale from the period mean
/// and from each other, and within-day spread must stay at noise scale —
/// so business-hour patterns, regime shifts, and bursts all classify as
/// unstable while flat-but-noisy databases classify as stable.

#pragma once

#include "timeseries/series.h"

namespace seagull {

/// \brief Evidence behind a stability verdict.
struct SqlStability {
  bool stable = false;
  double period_mean = 0.0;
  double period_stddev = 0.0;
  /// Largest |day mean − period mean| over the last three days.
  double max_day_mean_deviation = 0.0;
  /// Largest within-day standard deviation over the last three days.
  double max_day_stddev = 0.0;
};

/// Classifies one database over the evaluation period [from, to). The
/// last three full days must each have (a) a day-mean at noise scale
/// from the period mean, (b) within-day spread at noise scale, and (c)
/// day-means that agree with each other at noise scale.
SqlStability ClassifySqlDatabase(const LoadSeries& load, MinuteStamp from,
                                 MinuteStamp to);

}  // namespace seagull
