/// \file sql_fleet.h
/// \brief Simulated Azure SQL database fleet (Appendix A).
///
/// SQL telemetry differs from server telemetry in granularity — "database
/// identifier, timestamp in minutes, and average CPU load per 15 minutes"
/// (§A.1) — and in population: only 19.36% of sampled databases were
/// stable. The SQL fleet reuses the load-shape machinery of the server
/// simulator and downsamples onto the 15-minute grid.

#pragma once

#include <string>
#include <vector>

#include "telemetry/fleet.h"

namespace seagull {

/// \brief One simulated SQL database.
struct SqlDatabase {
  ServerProfile profile;  ///< shape parameters; id doubles as database id
};

/// \brief Parameters of the simulated SQL fleet.
struct SqlFleetConfig {
  int num_databases = 200;
  int weeks = 4;
  uint64_t seed = 1234;
  /// Fraction of databases generated from the low-variance archetype.
  /// Slightly above the §A.1 target of 19.36% observed-stable because
  /// the saturating tail and borderline noise push a few generators into
  /// the unstable verdict.
  double stable_fraction = 0.225;
};

/// \brief The SQL database fleet.
class SqlFleet {
 public:
  static SqlFleet Generate(const SqlFleetConfig& config);

  const SqlFleetConfig& config() const { return config_; }
  const std::vector<SqlDatabase>& databases() const { return databases_; }
  int64_t size() const { return static_cast<int64_t>(databases_.size()); }

  /// True 15-minute-grid CPU load of one database over [from, to).
  LoadSeries Load(const SqlDatabase& db, MinuteStamp from,
                  MinuteStamp to) const;

 private:
  SqlFleetConfig config_;
  std::vector<SqlDatabase> databases_;
};

}  // namespace seagull
