/// \file overbooking.h
/// \brief Overbooking opportunity analysis (§6.2).
///
/// "Only 3.7% of servers reach their CPU capacity per week, i.e., for
/// 96.3% of servers resources could be saved. This observation opens up
/// opportunities to overbook or auto-scale resources." This module
/// quantifies the opportunity: how much provisioned capacity a fleet
/// actually needs at a percentile, and how many simulated servers can be
/// packed per host under a quantile-based overbooking rule.

#pragma once

#include "telemetry/fleet.h"

namespace seagull {

/// \brief Fleet-wide overbooking headroom analysis.
struct OverbookingReport {
  int64_t servers = 0;
  /// Sum of nominal capacity (100% per server).
  double provisioned = 0.0;
  /// Sum of per-server weekly peak loads.
  double peak_demand = 0.0;
  /// Sum of per-server weekly p95 loads.
  double p95_demand = 0.0;
  /// Sum of per-server weekly mean loads.
  double mean_demand = 0.0;

  /// Fraction of provisioned capacity idle even at per-server peaks.
  double PeakHeadroom() const;
  /// Overbooking factor: how many servers fit per nominal server slot
  /// when packing by p95 demand with the given safety margin (points).
  double PackingFactor(double safety_margin = 10.0) const;
};

/// \brief Quantile-packing simulation outcome.
struct PackingOutcome {
  /// Servers packed per 100%-capacity host.
  int64_t servers_per_host = 0;
  /// Fraction of 5-minute intervals where the packed hosts' combined
  /// true load exceeded host capacity.
  double violation_rate = 0.0;
};

/// Analyzes one week of a fleet's true load.
OverbookingReport AnalyzeOverbooking(const Fleet& fleet, int64_t week);

/// Packs servers onto simulated 100%-capacity hosts in id order, adding
/// servers to a host while the sum of their p95 loads stays under
/// 100 − safety_margin, then measures true combined load violations.
PackingOutcome SimulatePacking(const Fleet& fleet, int64_t week,
                               double safety_margin = 10.0);

}  // namespace seagull
