#include "autoscale/classify.h"

#include <algorithm>
#include <cmath>

#include "timeseries/stats.h"

namespace seagull {

namespace {

/// Short-term noise scale of a series: the lag-1 successive-difference
/// estimator sqrt(mean(diff^2) / 2). Unlike the raw period standard
/// deviation this is robust to slow regime drift and recurring intra-day
/// shapes, which is what makes the stability verdict discriminative.
double NoiseScale(const LoadSeries& series) {
  double sum_sq = 0.0;
  int64_t n = 0;
  for (int64_t i = 1; i < series.size(); ++i) {
    double a = series.ValueAt(i - 1);
    double b = series.ValueAt(i);
    if (IsMissing(a) || IsMissing(b)) continue;
    sum_sq += (b - a) * (b - a);
    ++n;
  }
  if (n == 0) return 0.0;
  return std::sqrt(sum_sq / (2.0 * static_cast<double>(n)));
}

}  // namespace

SqlStability ClassifySqlDatabase(const LoadSeries& load, MinuteStamp from,
                                 MinuteStamp to) {
  SqlStability out;
  LoadSeries period = load.Slice(from, to);
  SeriesSummary summary = Summarize(period);
  if (summary.count == 0) return out;
  out.period_mean = summary.mean;
  out.period_stddev = summary.stddev;

  // "Variation does not exceed one standard deviation" (Definition 10),
  // where the deviation scale is the series' short-term noise — a
  // database is stable when, over its last three days, both the level
  // (day means) and the spread (within-day stddev) stay at noise scale.
  const double sigma = std::max(NoiseScale(period), 0.5);

  const int64_t last_day = DayIndex(to - 1);
  bool stable = true;
  bool any_day = false;
  double min_day_mean = 0.0, max_day_mean = 0.0;
  for (int64_t day = last_day - 2; day <= last_day; ++day) {
    LoadSeries slice = period.SliceDay(day);
    SeriesSummary day_summary = Summarize(slice);
    if (day_summary.count == 0) {
      stable = false;
      continue;
    }
    if (!any_day) {
      min_day_mean = max_day_mean = day_summary.mean;
    } else {
      min_day_mean = std::min(min_day_mean, day_summary.mean);
      max_day_mean = std::max(max_day_mean, day_summary.mean);
    }
    any_day = true;
    double deviation = std::fabs(day_summary.mean - out.period_mean);
    out.max_day_mean_deviation =
        std::max(out.max_day_mean_deviation, deviation);
    out.max_day_stddev = std::max(out.max_day_stddev, day_summary.stddev);
    // (a) the day's level sits at noise scale from the period mean;
    // (b) within-day spread is noise, not a business-hours pattern.
    if (deviation > 2.0 * sigma || day_summary.stddev > 2.5 * sigma) {
      stable = false;
    }
  }
  // (c) the three day levels agree with each other.
  if (any_day && max_day_mean - min_day_mean > 2.0 * sigma) {
    stable = false;
  }
  out.stable = stable && any_day;
  return out;
}

}  // namespace seagull
