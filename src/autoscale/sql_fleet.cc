#include "autoscale/sql_fleet.h"

#include "common/strings.h"
#include "timeseries/resample.h"

namespace seagull {

SqlFleet SqlFleet::Generate(const SqlFleetConfig& config) {
  SqlFleet fleet;
  fleet.config_ = config;
  Rng rng(config.seed);
  const int64_t horizon =
      static_cast<int64_t>(config.weeks) * kMinutesPerWeek;
  ArchetypeMix mix;
  // SQL databases are long-lived in the appendix's sample; the
  // conditional shape mix is driven by the stable fraction.
  mix.short_lived = 0.0;
  mix.stable = config.stable_fraction;
  mix.daily = 0.18;
  mix.weekly = 0.05;
  mix.no_pattern = 1.0 - mix.stable - mix.daily - mix.weekly;
  fleet.databases_.reserve(static_cast<size_t>(config.num_databases));
  for (int i = 0; i < config.num_databases; ++i) {
    SqlDatabase db;
    db.profile = SampleProfile(StringPrintf("sqldb-%05d", i), mix, horizon,
                               &rng);
    db.profile.created_at = 0;
    db.profile.deleted_at = horizon;
    fleet.databases_.push_back(std::move(db));
  }
  return fleet;
}

LoadSeries SqlFleet::Load(const SqlDatabase& db, MinuteStamp from,
                          MinuteStamp to) const {
  LoadSeries fine = GenerateLoad(db.profile, from, to, GeneratorOptions{});
  auto coarse = Downsample(fine, kSqlIntervalMinutes);
  coarse.status().Abort();  // 15 divides a day and is a multiple of 5
  return std::move(coarse).ValueUnsafe();
}

}  // namespace seagull
