/// \file policy.h
/// \brief Preemptive auto-scale policy simulation.
///
/// The appendix motivates the scenario ("predict the CPU load per
/// database 24 hours ahead" for preemptive resource scaling) and §6.2
/// notes that 96.3% of servers never reach capacity, opening overbooking
/// opportunities. This module closes the loop: provision capacity from
/// the forecast plus headroom and measure both SLO violations (true load
/// above provisioned capacity) and waste (provisioned but unused).

#pragma once

#include <string>

#include "autoscale/sql_fleet.h"
#include "forecast/model.h"

namespace seagull {

/// \brief Provisioning rule parameters.
struct AutoscalePolicy {
  /// Capacity is the forecast's rolling peak plus this many CPU points.
  double headroom = 10.0;
  /// Provisioning granularity: capacity is adjusted once per this many
  /// minutes (re-scaling a database is not free).
  int64_t reprovision_minutes = 4 * kMinutesPerHour;
  /// Floor so a database never drops to zero capacity.
  double min_capacity = 5.0;
};

/// \brief What one simulated day of auto-scaling achieved.
struct AutoscaleOutcome {
  std::string database_id;
  int64_t samples = 0;
  /// Samples where true load exceeded provisioned capacity.
  int64_t violations = 0;
  /// Mean provisioned capacity minus mean true load (CPU points).
  double mean_waste = 0.0;
  /// Mean provisioned capacity, for comparison with static provisioning.
  double mean_capacity = 0.0;

  double ViolationRate() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(violations) /
                              static_cast<double>(samples);
  }
};

/// Simulates one database-day: the model forecasts [day, day+24h) from
/// `history`, the policy converts the forecast into a capacity plan, and
/// the plan is scored against `truth`.
Result<AutoscaleOutcome> SimulateAutoscaleDay(const ForecastModel& model,
                                              const LoadSeries& history,
                                              const LoadSeries& truth,
                                              MinuteStamp day_start,
                                              const AutoscalePolicy& policy,
                                              const std::string& database_id);

/// Static-provisioning baseline: capacity fixed at the history's peak
/// plus headroom for the whole day.
AutoscaleOutcome StaticProvisionDay(const LoadSeries& history,
                                    const LoadSeries& truth,
                                    MinuteStamp day_start,
                                    const AutoscalePolicy& policy,
                                    const std::string& database_id);

}  // namespace seagull
