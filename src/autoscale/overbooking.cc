#include "autoscale/overbooking.h"

#include <algorithm>

#include "timeseries/stats.h"

namespace seagull {

double OverbookingReport::PeakHeadroom() const {
  if (provisioned <= 0) return 0.0;
  return 1.0 - peak_demand / provisioned;
}

double OverbookingReport::PackingFactor(double safety_margin) const {
  if (p95_demand <= 0 || servers == 0) return 0.0;
  double per_server_p95 = p95_demand / static_cast<double>(servers);
  if (per_server_p95 <= 0) return 0.0;
  return (100.0 - safety_margin) / per_server_p95;
}

OverbookingReport AnalyzeOverbooking(const Fleet& fleet, int64_t week) {
  OverbookingReport report;
  MinuteStamp from = week * kMinutesPerWeek;
  MinuteStamp to = from + kMinutesPerWeek;
  for (const auto& profile : fleet.servers()) {
    if (!profile.IsAliveAt(from)) continue;
    LoadSeries load = fleet.TrueLoad(profile, from, to);
    if (load.CountPresent() == 0) continue;
    ++report.servers;
    report.provisioned += 100.0;
    double peak = load.Max();
    report.peak_demand += IsMissing(peak) ? 0.0 : peak;
    double p95 = Quantile(load.values(), 0.95);
    report.p95_demand += IsMissing(p95) ? 0.0 : p95;
    double mean = load.Mean();
    report.mean_demand += IsMissing(mean) ? 0.0 : mean;
  }
  return report;
}

PackingOutcome SimulatePacking(const Fleet& fleet, int64_t week,
                               double safety_margin) {
  PackingOutcome outcome;
  MinuteStamp from = week * kMinutesPerWeek;
  MinuteStamp to = from + kMinutesPerWeek;
  const double budget = 100.0 - safety_margin;

  // Greedy first-fit onto one host: take servers in fleet order while
  // their p95 sum stays within budget.
  std::vector<LoadSeries> packed;
  double used = 0.0;
  for (const auto& profile : fleet.servers()) {
    if (!profile.IsAliveAt(from)) continue;
    LoadSeries load = fleet.TrueLoad(profile, from, to);
    if (load.CountPresent() == 0) continue;
    double p95 = Quantile(load.values(), 0.95);
    if (IsMissing(p95)) continue;
    if (used + p95 > budget && !packed.empty()) break;
    used += p95;
    packed.push_back(std::move(load));
  }
  outcome.servers_per_host = static_cast<int64_t>(packed.size());
  if (packed.empty()) return outcome;

  int64_t violations = 0, samples = 0;
  for (MinuteStamp t = from; t < to; t += kServerIntervalMinutes) {
    double total = 0.0;
    bool any = false;
    for (const auto& load : packed) {
      double v = load.ValueAtTime(t);
      if (IsMissing(v)) continue;
      total += v;
      any = true;
    }
    if (!any) continue;
    ++samples;
    if (total > 100.0) ++violations;
  }
  if (samples > 0) {
    outcome.violation_rate = static_cast<double>(violations) /
                             static_cast<double>(samples);
  }
  return outcome;
}

}  // namespace seagull
