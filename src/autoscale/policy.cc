#include "autoscale/policy.h"

#include <algorithm>

namespace seagull {

namespace {

/// Scores a per-slot capacity plan against the true load.
AutoscaleOutcome Score(const std::vector<double>& capacity_per_slot,
                       int64_t slot_minutes, const LoadSeries& truth,
                       MinuteStamp day_start,
                       const std::string& database_id) {
  AutoscaleOutcome out;
  out.database_id = database_id;
  double waste_sum = 0.0, cap_sum = 0.0;
  const int64_t interval = truth.interval_minutes();
  for (MinuteStamp t = day_start; t < day_start + kMinutesPerDay;
       t += interval) {
    double y = truth.ValueAtTime(t);
    if (IsMissing(y)) continue;
    size_t slot = static_cast<size_t>((t - day_start) / slot_minutes);
    if (slot >= capacity_per_slot.size()) slot = capacity_per_slot.size() - 1;
    double cap = capacity_per_slot[slot];
    ++out.samples;
    if (y > cap) ++out.violations;
    waste_sum += std::max(0.0, cap - y);
    cap_sum += cap;
  }
  if (out.samples > 0) {
    out.mean_waste = waste_sum / static_cast<double>(out.samples);
    out.mean_capacity = cap_sum / static_cast<double>(out.samples);
  }
  return out;
}

}  // namespace

Result<AutoscaleOutcome> SimulateAutoscaleDay(const ForecastModel& model,
                                              const LoadSeries& history,
                                              const LoadSeries& truth,
                                              MinuteStamp day_start,
                                              const AutoscalePolicy& policy,
                                              const std::string& database_id) {
  SEAGULL_ASSIGN_OR_RETURN(
      LoadSeries forecast,
      model.Forecast(history, day_start, kMinutesPerDay));
  const int64_t slots =
      (kMinutesPerDay + policy.reprovision_minutes - 1) /
      policy.reprovision_minutes;
  std::vector<double> capacity(static_cast<size_t>(slots),
                               policy.min_capacity);
  for (int64_t s = 0; s < slots; ++s) {
    MinuteStamp slot_start = day_start + s * policy.reprovision_minutes;
    MinuteStamp slot_end =
        std::min(slot_start + policy.reprovision_minutes,
                 day_start + kMinutesPerDay);
    // Peak of the forecast within the slot drives the provisioned level.
    double peak = forecast.Slice(slot_start, slot_end).Max();
    if (!IsMissing(peak)) {
      capacity[static_cast<size_t>(s)] =
          std::max(policy.min_capacity, peak + policy.headroom);
    }
  }
  return Score(capacity, policy.reprovision_minutes, truth, day_start,
               database_id);
}

AutoscaleOutcome StaticProvisionDay(const LoadSeries& history,
                                    const LoadSeries& truth,
                                    MinuteStamp day_start,
                                    const AutoscalePolicy& policy,
                                    const std::string& database_id) {
  double peak = history.Max();
  double cap = IsMissing(peak) ? policy.min_capacity
                               : std::max(policy.min_capacity,
                                          peak + policy.headroom);
  return Score({cap}, kMinutesPerDay, truth, day_start, database_id);
}

}  // namespace seagull
