#include "autoscale/eval.h"

#include <algorithm>
#include <chrono>

#include "forecast/model.h"
#include "metrics/standard.h"

namespace seagull {

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Result<std::vector<AutoscaleModelResult>> EvaluateAutoscaleModels(
    const SqlFleet& fleet, const AutoscaleEvalOptions& options) {
  std::vector<std::string> models = options.models;
  if (models.empty()) {
    // The appendix compares persistent forecast (previous day), the
    // neural network (GluonTS analog), and ARIMA.
    models = {"persistent_prev_day", "feedforward", "arima"};
  }

  const MinuteStamp train_start = options.train_week * kMinutesPerWeek;
  const MinuteStamp train_end = train_start + kMinutesPerWeek;
  const MinuteStamp eval_start = train_end;
  const MinuteStamp eval_end = eval_start + kMinutesPerDay;

  std::vector<AutoscaleModelResult> out;
  for (const auto& model_name : models) {
    AutoscaleModelResult r;
    r.model = model_name;
    double nrmse_sum = 0.0, mase_sum = 0.0;
    int64_t metric_count = 0;

    int64_t limit = options.max_databases > 0
                        ? std::min<int64_t>(options.max_databases,
                                            fleet.size())
                        : fleet.size();
    for (int64_t i = 0; i < limit; ++i) {
      const SqlDatabase& db = fleet.databases()[static_cast<size_t>(i)];
      LoadSeries history = fleet.Load(db, 0, train_end);
      LoadSeries train = history.Slice(train_start, train_end);
      LoadSeries truth = fleet.Load(db, eval_start, eval_end);

      SEAGULL_ASSIGN_OR_RETURN(auto model,
                               ModelFactory::Global().Create(model_name));
      auto t0 = std::chrono::steady_clock::now();
      Status fit = model->Fit(train);
      r.train_millis += MillisSince(t0);
      if (!fit.ok()) continue;

      auto t1 = std::chrono::steady_clock::now();
      auto predicted =
          model->Forecast(history, eval_start, kMinutesPerDay);
      r.inference_millis += MillisSince(t1);
      if (!predicted.ok()) continue;

      auto t2 = std::chrono::steady_clock::now();
      double nrmse = NormalizedRmse(*predicted, truth);
      double mase = MeanAbsoluteScaledError(*predicted, truth);
      r.accuracy_millis += MillisSince(t2);
      if (IsMissing(nrmse) || IsMissing(mase)) continue;
      nrmse_sum += nrmse;
      mase_sum += mase;
      ++metric_count;
    }
    r.databases_evaluated = metric_count;
    if (metric_count > 0) {
      r.mean_nrmse = nrmse_sum / static_cast<double>(metric_count);
      r.mean_mase = mase_sum / static_cast<double>(metric_count);
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace seagull
