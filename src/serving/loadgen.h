/// \file loadgen.h
/// \brief Deterministic load-test drivers for the serving engine.
///
/// Shaped after the open/closed-loop taxonomy in *Load Testing for
/// Machine Learning Model Serving Systems at Scale* (PAPERS.md): an
/// open-loop driver replays a fixed arrival schedule drawn once from a
/// seeded RNG (arrival rate independent of completion — the overload
/// probe), while a closed-loop driver runs N virtual clients that issue
/// requests back-to-back (in-flight never exceeds N — the capacity
/// probe). Three workload profiles shape the per-tick intensity: ramp
/// (linear climb), spike (quiet baseline with a mid-run burst), soak
/// (flat sustained rate over a longer horizon).
///
/// Everything is a pure function of the options: `BuildSchedule` emits
/// the complete request list up front — verbs, target servers, ingest
/// payloads, arrival offsets — so two runs with the same options execute
/// byte-identical workloads at any `--jobs` count. `RunLoadTest` then
/// plays the schedule against a `ServingEngine` tick by tick (requests
/// of epoch k run concurrently, then `Tick()` advances the epoch) and
/// reports latency percentiles, throughput, refit amortization, and an
/// order-independent response digest (the determinism-test currency).

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serving/engine.h"

namespace seagull {

/// \brief Per-tick intensity shape of a load test.
enum class LoadProfile : int8_t { kRamp, kSpike, kSoak };

const char* LoadProfileName(LoadProfile profile);
Result<LoadProfile> ParseLoadProfile(const std::string& name);

/// \brief Arrival discipline of the driver.
enum class DriverMode : int8_t { kOpenLoop, kClosedLoop };

const char* DriverModeName(DriverMode mode);
Result<DriverMode> ParseDriverMode(const std::string& name);

/// \brief Workload knobs. The defaults make a small smoke-size run;
/// bench/loadgen scales them up to the 1200-server fleet.
struct LoadgenOptions {
  LoadProfile profile = LoadProfile::kRamp;
  DriverMode mode = DriverMode::kOpenLoop;
  /// Seeds the whole schedule: verbs, servers, payloads, offsets.
  uint64_t seed = 1;
  /// Simulated 5-minute epochs (soak runs typically use more).
  int64_t ticks = 12;
  /// Open loop: peak arrivals per tick (the profile scales each tick's
  /// count off this). Closed loop: peak requests per client per tick.
  int64_t base_requests_per_tick = 200;
  /// Closed loop only: number of virtual clients (= in-flight bound).
  int closed_loop_clients = 8;
  /// Verb mix; the remainder after predict + ll_window + batch +
  /// subscribe is ingest. The batch and subscribe fractions default to
  /// zero so schedules built without them are byte-identical to the
  /// PR 6 generation (no RNG draw happens for a zero-width range).
  double predict_fraction = 0.6;
  double ll_window_fraction = 0.2;
  /// Batch predicts: one request covering `batch_size` drawn servers
  /// (duplicates allowed), answered from one epoch snapshot.
  double batch_fraction = 0.0;
  int64_t batch_size = 8;
  /// Subscription churn: half of these draws register an `ll`-window
  /// subscription (ids "lg-sub-N", assigned at build time), the other
  /// half unsubscribe one registered in an *earlier* tick — same-tick
  /// unsubscribes could race their own subscribe across workers and
  /// break response determinism.
  double subscribe_fraction = 0.0;
  /// Engine epoch origin: ingest increments for tick k carry the sample
  /// at `epoch_start + k * 5min`. Point this at the bootstrap tails'
  /// end so increments extend the tails.
  MinuteStamp epoch_start = 0;
  /// Request-execution concurrency; <= 1 runs the schedule sequentially
  /// (the determinism reference).
  int jobs = 1;
};

/// \brief One scheduled request, fully materialized.
struct ScheduledRequest {
  int64_t tick = 0;    ///< epoch the request arrives in
  int64_t seq = 0;     ///< global arrival order; unique across the run
  int64_t client = 0;  ///< closed loop: issuing virtual client
  /// Open loop: simulated arrival offset within the tick, microseconds
  /// (exponential inter-arrival gaps; purely descriptive for reporting).
  int64_t offset_micros = 0;
  /// predict | batch_predict | ll_window | subscribe_ll | unsubscribe |
  /// ingest (batch_predict is the reporting label; on the wire it is a
  /// "predict" with a `servers` array).
  std::string verb;
  std::string body;  ///< complete JSON request text
};

/// Arrivals the profile prescribes for tick `t` of `ticks`, given the
/// peak-per-tick `base`: ramp climbs linearly to `base`, spike idles at
/// base/4 except for a 3x-base burst in the middle tenth, soak holds
/// `base` flat. Exposed so tests can assert the declared counts.
int64_t ProfileRequestsAtTick(LoadProfile profile, int64_t base, int64_t t,
                              int64_t ticks);

/// Sum of `ProfileRequestsAtTick` over every tick (one virtual client's
/// worth in closed-loop mode).
int64_t ProfileTotalRequests(LoadProfile profile, int64_t base,
                             int64_t ticks);

/// Materializes the complete request schedule for `options` against the
/// given server population. Pure: same arguments, same schedule.
std::vector<ScheduledRequest> BuildSchedule(
    const LoadgenOptions& options,
    const std::vector<std::string>& server_ids);

/// \brief Latency summary of one verb, microseconds.
struct LatencySummary {
  int64_t count = 0;
  int64_t errors = 0;  ///< structured {"ok":false} responses
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  Json ToJson() const;
};

/// \brief Result of one load-test run.
struct LoadgenReport {
  LoadProfile profile = LoadProfile::kRamp;
  DriverMode mode = DriverMode::kOpenLoop;
  int64_t requests = 0;
  int64_t ok = 0;
  int64_t errors = 0;
  double wall_millis = 0.0;
  /// Served requests per second of wall time (0 under a frozen clock).
  double throughput_rps = 0.0;
  /// Per-server predictions answered (a batch of 16 counts 16) — the
  /// mix-independent work unit for cross-run throughput comparison.
  int64_t predictions = 0;
  double prediction_throughput_ps = 0.0;
  /// Per-verb latency percentiles over the run.
  std::map<std::string, LatencySummary> latency;
  /// Tick-loop accounting: how well dirty-set tracking amortizes refits.
  int64_t ticks = 0;
  int64_t refits = 0;
  int64_t refit_failures = 0;
  int64_t clean_skips = 0;
  int64_t ingests_applied = 0;
  /// refits / max(1, queries) — below 1.0 means caching pays.
  double refit_per_query = 0.0;
  /// Peak concurrently executing requests (closed loop: <= clients).
  int64_t max_in_flight = 0;
  /// Subscription records fired across the run's ticks.
  int64_t notifications = 0;
  /// Mean, over notifications, of (fire tick − oldest unconsumed ingest
  /// tick for that server): ~0 when every ingest's refit lands on its
  /// own tick, positive when refit faults delay the window move to a
  /// later tick's refit.
  double notify_lag_ticks = 0.0;
  /// FNV-1a over every (seq, response) pair in seq order, folded with a
  /// digest of the notification stream — identical across jobs counts
  /// when the engine honors its determinism contract.
  uint64_t response_digest = 0;

  Json ToJson() const;
};

/// Plays `schedule` against `engine`: for each tick, executes that
/// epoch's requests (concurrently across `options.jobs` workers, or per
/// virtual client in closed-loop mode), then calls `engine->Tick()`.
/// The schedule must come from `BuildSchedule` with the same options.
LoadgenReport RunLoadTest(ServingEngine* engine,
                          const LoadgenOptions& options,
                          const std::vector<ScheduledRequest>& schedule);

}  // namespace seagull
