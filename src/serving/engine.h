/// \file engine.h
/// \brief Long-lived streaming forecast server over a double-buffered
/// (epoch-swapped) fleet state.
///
/// The production deployment serves forecasts "through a REST endpoint"
/// on rolling telemetry (§2.2). `ServingEngine` is that serving mode:
/// it holds the deployed champion `ModelEndpoint` plus one rolling
/// telemetry tail per server, ingests telemetry increments continuously,
/// and re-forecasts on a simulated 5-minute tick — but only servers
/// whose tail changed since the previous tick (dirty-set tracking).
///
/// Epoch model (double buffering): all query-visible state — the cached
/// forecast, its refit tick, and the last refit error of every server —
/// lives in an immutable `FleetEpoch` published through an atomic
/// `shared_ptr`. Queries (`predict`, batch predict, `ll_window`) load
/// the published pointer once and answer entirely from that snapshot:
/// they take no shard lock and never wait behind a running `Tick()`,
/// so predict tail latency is independent of refit cost. `Tick()`
/// builds the *next* epoch in a shadow buffer — it copies the published
/// entry table (cheap: forecasts are shared, not cloned), drains the
/// pending ingests into the tick-owned tails in sequence-number order,
/// re-forecasts exactly the dirty servers into the shadow entries, and
/// then publishes the shadow with a single atomic pointer swap. A query
/// that interleaves with a tick therefore observes either the previous
/// epoch or the new one in full — never a torn mix — and every entry of
/// a batch response comes from one snapshot (the `epoch` field names
/// it). Ingests never mutate query-visible state at all: they enqueue
/// the increment on the server's shard-locked pending list, which only
/// `Tick()` reads.
///
/// Refit fan-out: with `options.refit_model` empty the dirty servers
/// are re-forecast through the deployed endpoint, fanned out over the
/// pool. When `refit_model` names a trainable family, the dirty tails
/// are instead re-FIT through `BatchTrainer` (src/forecast/batch),
/// which groups same-shape tails so design matrices and Grams are built
/// once per group, then each fitted model forecasts its horizon — the
/// batched path is byte-identical to per-server fits by the
/// BatchTrainer equivalence contract.
///
/// Subscriptions: `subscribe_ll` registers a per-server low-load-window
/// watermark. At the end of every tick — after the epoch swap — the
/// engine recomputes the window of each subscribed server that was
/// refit this tick and, when the window moved off the watermark, emits
/// a `Notification` record in `TickResult::notifications` (sorted by
/// subscription id, so the records are schedule-independent). A
/// subscription observes the same staleness contract as queries: its
/// watermark always describes a published epoch, never a mid-build one.
///
/// Determinism contract (tests/serving_determinism_test.cc): with a
/// frozen clock and a fixed request schedule, the set of responses, the
/// notification stream, and the final `SnapshotText()` are
/// byte-identical whatever the number of worker threads, because (a)
/// responses depend only on (request, published epoch), (b) pending
/// increments merge in explicit sequence order, (c) refits iterate the
/// dirty set in sorted server order and each body writes only its own
/// shadow entry, and (d) notifications are evaluated on the tick thread
/// in sorted subscription order. The refit path carries the
/// `serving.refit` fault point, keyed per server, so injected failures
/// are equally schedule-independent: a failed refit keeps the stale
/// forecast (the shadow entry retains the previous epoch's series) and
/// surfaces in `refit_failures` and the entry's `last_error`.

#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/obs/metrics.h"
#include "parallel/thread_pool.h"
#include "pipeline/serving.h"
#include "telemetry/records.h"
#include "timeseries/window.h"

namespace seagull {

/// \brief Serving-engine knobs.
struct ServingOptions {
  /// Forecast horizon recomputed for each dirty server at every tick.
  int64_t horizon_minutes = kMinutesPerDay;
  /// Rolling telemetry kept per server; older samples are trimmed at
  /// tick time so steady-state memory is O(servers * cap).
  int64_t tail_cap_minutes = 14 * kMinutesPerDay;
  /// Shards of the mutable ingest state (power of two recommended);
  /// each shard has its own lock so ingests on unrelated servers never
  /// contend. Queries take no shard lock at all.
  int shards = 16;
  /// Refit fan-out pool; nullptr re-forecasts sequentially.
  ThreadPool* pool = nullptr;
  /// When non-empty, names a trainable model family: each tick re-fits
  /// that family on every dirty tail through `BatchTrainer` (grouping
  /// same-shape servers into shared-design batches) and forecasts from
  /// the fresh fit, instead of predicting through the deployed
  /// endpoint. Byte-deterministic at any pool width.
  std::string refit_model;
  /// Upper bound on `servers` per batch-predict request.
  int64_t max_batch_servers = 256;
};

/// \brief One subscription-fired low-load-window move.
struct Notification {
  std::string subscription_id;
  std::string server_id;
  int64_t tick = 0;          ///< epoch whose swap fired the record
  WindowResult window;       ///< the new lowest-load window
  MinuteStamp previous_start = 0;  ///< watermark the window moved off

  Json ToJson() const;
};

/// \brief Outcome of one simulated 5-minute tick.
struct TickResult {
  int64_t tick = 0;             ///< epoch number just published (1-based)
  int64_t ingests_applied = 0;  ///< pending increments merged into tails
  int64_t refits = 0;           ///< dirty servers re-forecast (incl. failed)
  int64_t refit_failures = 0;   ///< refits that kept the stale forecast
  int64_t clean_skips = 0;      ///< servers left on their cached forecast
  int64_t batch_groups = 0;     ///< refit_model mode: shape groups formed
  int64_t batch_shared = 0;     ///< refit_model mode: fits sharing a design
  /// Window-move records fired by this tick's swap, in subscription-id
  /// order (empty without subscriptions).
  std::vector<Notification> notifications;

  Json ToJson() const;
};

/// \brief Streaming forecast server: epoch-swapped fleet state + tick
/// loop.
class ServingEngine {
 public:
  explicit ServingEngine(ModelEndpoint endpoint, ServingOptions options = {});

  /// Seeds the fleet state with one telemetry tail per server, marks
  /// every server dirty, and publishes an epoch-0 snapshot with no
  /// forecasts (queries answer FailedPrecondition until the first
  /// `Tick()`). Re-registering an id replaces its tail.
  Status Bootstrap(const std::vector<ServerTelemetry>& fleet);

  /// Handles one JSON request (text in, text out; never throws/crashes).
  /// Verbs, dispatched on the "verb" member:
  ///   predict   {"verb":"predict","server_id":S,
  ///              ["start":M,"horizon_minutes":H] | ["recent":{series}]}
  ///     With "recent", computes through the endpoint directly (the
  ///     stateless `ForecastService` wire contract; "verb" may then be
  ///     omitted entirely). Without it, serves the published epoch's
  ///     forecast, sliced to [start, start+horizon) when given; the
  ///     response carries the snapshot's "epoch" and the server's
  ///     refit "tick".
  ///   predict (batch) {"verb":"predict","servers":[S,...],
  ///              ["start":M,"horizon_minutes":H]}
  ///     Answers every listed server — duplicates allowed, unknown ids
  ///     yield per-server {ok:false,error,code} entries — from ONE
  ///     epoch snapshot: {"ok":true,"epoch":E,"results":[...]}.
  ///   ll_window {"verb":"ll_window","server_id":S,
  ///              ["day":D]["duration_minutes":B]}
  ///     Lowest-load window (Definition 7) over the published forecast;
  ///     `day` defaults to the forecast's first day, duration to 60.
  ///   subscribe_ll {"verb":"subscribe_ll","server_id":S,["id":I],
  ///              ["duration_minutes":B]}
  ///     Registers a window watermark; ticks that move the server's
  ///     lowest-load window emit `Notification` records. Re-using an id
  ///     re-arms it. Ids default to an arrival counter (schedule-
  ///     dependent — loadgen always assigns explicit ids).
  ///   unsubscribe {"verb":"unsubscribe","id":I}
  ///     Removes a subscription; unknown ids are NotFound.
  ///   ingest    {"verb":"ingest","server_id":S,["seq":N],
  ///              "series":{series}}
  ///     Enqueues the increment for the next tick. Unknown servers are
  ///     auto-registered. `seq` orders same-server merges; omitted seqs
  ///     draw from an arrival counter (schedule-dependent — loadgen
  ///     always assigns explicit seqs).
  /// Success responses carry {"ok":true,...}; failures the structured
  /// {"ok":false,"error":...,"code":...} form shared with
  /// `ForecastService`.
  std::string Handle(const std::string& request_text);

  /// Advances one epoch: drains pending ingests (per server, in seq
  /// order), trims tails to `tail_cap_minutes`, re-forecasts the dirty
  /// set in sorted server order into a shadow epoch, publishes it with
  /// one atomic swap, and evaluates subscriptions against the new
  /// epoch. Must not run concurrently with itself; queries, ingests,
  /// and (un)subscribes may run concurrently with it (see the epoch
  /// model above).
  TickResult Tick();

  int64_t tick() const { return tick_.load(std::memory_order_acquire); }
  int64_t server_count() const;
  int64_t subscription_count() const;
  const ModelEndpoint& endpoint() const { return endpoint_; }
  const ServingOptions& options() const { return options_; }

  /// Requests answered ok / with a structured error since construction.
  int64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }
  int64_t requests_failed() const {
    return failed_.load(std::memory_order_relaxed);
  }

  /// Pending increments not yet applied by a tick (the queue-depth
  /// gauge's value).
  int64_t pending_ingests() const {
    return pending_count_.load(std::memory_order_relaxed);
  }

  /// Deterministic full-fleet dump: epoch, endpoint identity, every
  /// server's tail, published forecast, dirty flag, and last refit
  /// outcome in sorted server order, plus the subscription table.
  /// Byte-identical across runs that served the same schedule (the
  /// determinism test's snapshot currency). Not concurrent-safe with
  /// `Tick()`.
  std::string SnapshotText() const;

 private:
  /// Query-visible per-server state; immutable once its epoch publishes.
  struct EpochEntry {
    /// Shared across epochs until a refit replaces it; null before the
    /// server's first successful refit.
    std::shared_ptr<const LoadSeries> forecast;
    int64_t last_refit_tick = -1;
    std::string last_error;  ///< failure text of the last refit, if any
  };
  /// One published epoch: the full fleet's query-visible entries.
  struct FleetEpoch {
    int64_t epoch = 0;
    std::map<std::string, EpochEntry> servers;
  };

  /// Tick-owned mutable state, sharded; queries never touch it.
  struct ServerState {
    LoadSeries tail;
    /// Increments queued since the last tick, in arrival order; merged
    /// in ascending seq order at tick time.
    std::vector<std::pair<int64_t, LoadSeries>> pending;
    bool dirty = true;
  };
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, ServerState> servers;
  };

  struct Subscription {
    std::string server_id;
    int64_t duration_minutes = 60;
    bool armed = false;      ///< watermark holds a found window
    WindowResult watermark;  ///< last window reported (or seen at arm)
  };

  Shard& ShardOf(const std::string& server_id);
  const Shard& ShardOf(const std::string& server_id) const;

  /// The currently published epoch (never null after construction).
  std::shared_ptr<const FleetEpoch> Snapshot() const {
    return published_.load(std::memory_order_acquire);
  }

  /// True when the mutable state knows the server (registered via
  /// bootstrap or ingest), i.e. an epoch miss means "awaiting first
  /// tick" rather than "unknown server".
  bool IsRegistered(const std::string& server_id) const;

  /// One server's answer from `snap`: the forecast (sliced when the
  /// request asks) plus refit bookkeeping. Shared by the single and
  /// batch predict paths.
  Result<Json> PredictFromSnapshot(const FleetEpoch& snap,
                                   const std::string& server_id,
                                   const Json& request);

  /// Verb bodies; each returns the response document or a status that
  /// `Handle` renders as the structured error form.
  Result<Json> HandlePredict(const Json& request);
  Result<Json> HandleBatchPredict(const Json& request);
  Result<Json> HandleLLWindow(const Json& request);
  Result<Json> HandleSubscribe(const Json& request);
  Result<Json> HandleUnsubscribe(const Json& request);
  Result<Json> HandleIngest(const Json& request);

  ModelEndpoint endpoint_;
  ServingOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// The double buffer's front pointer. `Tick()` is the only writer;
  /// queries load it wait-free with respect to refit work.
  std::atomic<std::shared_ptr<const FleetEpoch>> published_;

  mutable std::mutex subs_mu_;
  std::map<std::string, Subscription> subs_;

  std::atomic<int64_t> tick_{0};
  std::atomic<int64_t> served_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> pending_count_{0};
  std::atomic<int64_t> arrival_seq_{0};  ///< fallback for seq-less ingests
  std::atomic<int64_t> sub_seq_{0};      ///< fallback for id-less subscribes

  // Obs instruments, resolved once (registry pointers are stable).
  Counter* dirty_marks_;
  Counter* refits_;
  Counter* refit_failures_;
  Counter* ticks_;
  Counter* notifications_;
  Gauge* queue_depth_;
  Gauge* servers_gauge_;
  Gauge* subscriptions_gauge_;
  Histogram* tick_micros_;
};

}  // namespace seagull
