/// \file engine.h
/// \brief Long-lived streaming forecast server over sharded fleet state.
///
/// The production deployment serves forecasts "through a REST endpoint"
/// on rolling telemetry (§2.2). `ServingEngine` is that serving mode:
/// it holds the deployed champion `ModelEndpoint` plus one rolling
/// telemetry tail per server, ingests telemetry increments continuously,
/// and re-forecasts on a simulated 5-minute tick — but only servers whose
/// tail changed since the previous tick (dirty-set tracking). Predict and
/// low-load-window queries are answered concurrently with the ingest
/// stream from the per-server cached forecast.
///
/// Epoch model and stale-read semantics: ingest requests never mutate
/// the tail in place — they enqueue the increment on the server's
/// pending list. `Tick()` drains the pending lists in sequence-number
/// order, merges them into the tails, and re-forecasts exactly the dirty
/// servers. A query issued between ticks therefore always observes the
/// forecast installed by the last completed tick, no matter how it
/// interleaves with ingests; during a tick a query observes either the
/// previous or the freshly installed forecast of that server (per-server
/// atomic swap under the shard lock), never a torn one.
///
/// Determinism contract (tests/serving_determinism_test.cc): with a
/// frozen clock and a fixed request schedule, the set of responses and
/// the final `SnapshotText()` are byte-identical whatever the number of
/// worker threads, because (a) responses depend only on (request, tick
/// epoch), (b) pending increments merge in explicit sequence order, and
/// (c) refits iterate the dirty set in sorted server order and each body
/// writes only its own server's state. The refit path carries the
/// `serving.refit` fault point, keyed per server, so injected failures
/// are equally schedule-independent: a failed refit keeps the stale
/// forecast and surfaces in `refit_failures`.

#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/obs/metrics.h"
#include "parallel/thread_pool.h"
#include "pipeline/serving.h"
#include "telemetry/records.h"

namespace seagull {

/// \brief Serving-engine knobs.
struct ServingOptions {
  /// Forecast horizon recomputed for each dirty server at every tick.
  int64_t horizon_minutes = kMinutesPerDay;
  /// Rolling telemetry kept per server; older samples are trimmed at
  /// tick time so steady-state memory is O(servers * cap).
  int64_t tail_cap_minutes = 14 * kMinutesPerDay;
  /// Fleet-state shards (power of two recommended); each shard has its
  /// own lock so queries on unrelated servers never contend.
  int shards = 16;
  /// Refit fan-out pool; nullptr re-forecasts sequentially.
  ThreadPool* pool = nullptr;
};

/// \brief Outcome of one simulated 5-minute tick.
struct TickResult {
  int64_t tick = 0;             ///< epoch number just completed (1-based)
  int64_t ingests_applied = 0;  ///< pending increments merged into tails
  int64_t refits = 0;           ///< dirty servers re-forecast (incl. failed)
  int64_t refit_failures = 0;   ///< refits that kept the stale forecast
  int64_t clean_skips = 0;      ///< servers left on their cached forecast

  Json ToJson() const;
};

/// \brief Streaming forecast server: sharded fleet state + tick loop.
class ServingEngine {
 public:
  explicit ServingEngine(ModelEndpoint endpoint, ServingOptions options = {});

  /// Seeds the fleet state with one telemetry tail per server and marks
  /// every server dirty; the first `Tick()` computes initial forecasts.
  /// Re-registering an id replaces its tail.
  Status Bootstrap(const std::vector<ServerTelemetry>& fleet);

  /// Handles one JSON request (text in, text out; never throws/crashes).
  /// Verbs, dispatched on the "verb" member:
  ///   predict   {"verb":"predict","server_id":S,
  ///              ["start":M,"horizon_minutes":H] | ["recent":{series}]}
  ///     With "recent", computes through the endpoint directly (the
  ///     stateless `ForecastService` wire contract; "verb" may then be
  ///     omitted entirely). Without it, serves the cached per-server
  ///     forecast, sliced to [start, start+horizon) when given.
  ///   ll_window {"verb":"ll_window","server_id":S,
  ///              ["day":D]["duration_minutes":B]}
  ///     Lowest-load window (Definition 7) over the cached forecast;
  ///     `day` defaults to the forecast's first day, duration to 60.
  ///   ingest    {"verb":"ingest","server_id":S,["seq":N],
  ///              "series":{series}}
  ///     Enqueues the increment for the next tick. Unknown servers are
  ///     auto-registered. `seq` orders same-server merges; omitted seqs
  ///     draw from an arrival counter (schedule-dependent — loadgen
  ///     always assigns explicit seqs).
  /// Success responses carry {"ok":true,...}; failures the structured
  /// {"ok":false,"error":...,"code":...} form shared with
  /// `ForecastService`.
  std::string Handle(const std::string& request_text);

  /// Advances one epoch: drains pending ingests (per server, in seq
  /// order), trims tails to `tail_cap_minutes`, re-forecasts the dirty
  /// set in sorted server order, installs the new forecasts, and bumps
  /// the tick counter. Must not run concurrently with itself; queries
  /// and ingests may run concurrently with it (see stale-read semantics
  /// above).
  TickResult Tick();

  int64_t tick() const { return tick_.load(std::memory_order_acquire); }
  int64_t server_count() const;
  const ModelEndpoint& endpoint() const { return endpoint_; }
  const ServingOptions& options() const { return options_; }

  /// Requests answered ok / with a structured error since construction.
  int64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }
  int64_t requests_failed() const {
    return failed_.load(std::memory_order_relaxed);
  }

  /// Pending increments not yet applied by a tick (the queue-depth
  /// gauge's value).
  int64_t pending_ingests() const {
    return pending_count_.load(std::memory_order_relaxed);
  }

  /// Deterministic full-fleet dump: tick, endpoint identity, and every
  /// server's tail, cached forecast, dirty flag, and last refit outcome,
  /// in sorted server order. Byte-identical across runs that served the
  /// same schedule (the determinism test's snapshot currency). Not
  /// concurrent-safe with `Tick()`.
  std::string SnapshotText() const;

 private:
  struct ServerState {
    LoadSeries tail;
    /// Increments queued since the last tick, in arrival order; merged
    /// in ascending seq order at tick time.
    std::vector<std::pair<int64_t, LoadSeries>> pending;
    LoadSeries forecast;
    bool has_forecast = false;
    bool dirty = true;
    int64_t last_refit_tick = -1;
    std::string last_error;  ///< failure text of the last refit, if any
  };
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, ServerState> servers;
  };

  Shard& ShardOf(const std::string& server_id);
  const Shard& ShardOf(const std::string& server_id) const;

  /// Verb bodies; each returns the response document or a status that
  /// `Handle` renders as the structured error form.
  Result<Json> HandlePredict(const Json& request);
  Result<Json> HandleLLWindow(const Json& request);
  Result<Json> HandleIngest(const Json& request);

  ModelEndpoint endpoint_;
  ServingOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> tick_{0};
  std::atomic<int64_t> served_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> pending_count_{0};
  std::atomic<int64_t> arrival_seq_{0};  ///< fallback for seq-less ingests

  // Obs instruments, resolved once (registry pointers are stable).
  Counter* dirty_marks_;
  Counter* refits_;
  Counter* refit_failures_;
  Counter* ticks_;
  Gauge* queue_depth_;
  Gauge* servers_gauge_;
  Histogram* tick_micros_;
};

}  // namespace seagull
