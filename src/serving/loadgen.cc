#include "serving/loadgen.h"

#include <algorithm>
#include <atomic>

#include "common/obs/clock.h"
#include "common/random.h"
#include "common/strings.h"

namespace seagull {

namespace {

/// Quantizes to the telemetry data plane's %.4f grid so ingest payloads
/// survive a JSON round trip bit-for-bit.
double Quantize4(double v) {
  return std::floor(v * 10000.0 + 0.5) / 10000.0;
}

double Percentile(std::vector<double>* samples, double q) {
  if (samples->empty()) return 0.0;
  std::sort(samples->begin(), samples->end());
  const double idx = q * static_cast<double>(samples->size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, samples->size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return (*samples)[lo] + frac * ((*samples)[hi] - (*samples)[lo]);
}

uint64_t Fnv1a(uint64_t hash, const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;

}  // namespace

const char* LoadProfileName(LoadProfile profile) {
  switch (profile) {
    case LoadProfile::kRamp:
      return "ramp";
    case LoadProfile::kSpike:
      return "spike";
    case LoadProfile::kSoak:
      return "soak";
  }
  return "unknown";
}

Result<LoadProfile> ParseLoadProfile(const std::string& name) {
  if (name == "ramp") return LoadProfile::kRamp;
  if (name == "spike") return LoadProfile::kSpike;
  if (name == "soak") return LoadProfile::kSoak;
  return Status::Invalid("unknown load profile: " + name);
}

const char* DriverModeName(DriverMode mode) {
  return mode == DriverMode::kOpenLoop ? "open" : "closed";
}

Result<DriverMode> ParseDriverMode(const std::string& name) {
  if (name == "open") return DriverMode::kOpenLoop;
  if (name == "closed") return DriverMode::kClosedLoop;
  return Status::Invalid("unknown driver mode: " + name);
}

int64_t ProfileRequestsAtTick(LoadProfile profile, int64_t base, int64_t t,
                              int64_t ticks) {
  if (base <= 0 || ticks <= 0 || t < 0 || t >= ticks) return 0;
  switch (profile) {
    case LoadProfile::kRamp:
      // Linear climb ending at the full base rate on the last tick.
      return base * (t + 1) / ticks;
    case LoadProfile::kSpike: {
      // Quiet baseline with a 3x burst over the middle tenth.
      const int64_t burst_start = ticks / 2;
      const int64_t burst_len = std::max<int64_t>(1, ticks / 10);
      if (t >= burst_start && t < burst_start + burst_len) return base * 3;
      return std::max<int64_t>(1, base / 4);
    }
    case LoadProfile::kSoak:
      return base;
  }
  return 0;
}

int64_t ProfileTotalRequests(LoadProfile profile, int64_t base,
                             int64_t ticks) {
  int64_t total = 0;
  for (int64_t t = 0; t < ticks; ++t) {
    total += ProfileRequestsAtTick(profile, base, t, ticks);
  }
  return total;
}

namespace {

/// Build-time subscription registry: ids live from their subscribe draw
/// until an unsubscribe draw picks them. Entries carry the tick they
/// were created in so unsubscribes only target earlier-tick ids (a
/// same-tick pair could race across workers and break determinism).
struct SubSchedule {
  std::vector<std::pair<std::string, int64_t>> live;  ///< (id, born tick)
  int64_t next_id = 0;
};

/// Appends one request drawn from `rng` for epoch `tick` to `out`.
void AppendRequest(const LoadgenOptions& options,
                   const std::vector<std::string>& server_ids, Rng* rng,
                   SubSchedule* subs, int64_t tick, int64_t seq,
                   int64_t client, int64_t offset_micros,
                   std::vector<ScheduledRequest>* out) {
  const std::string& server =
      server_ids[static_cast<size_t>(rng->UniformInt(
          0, static_cast<int64_t>(server_ids.size()) - 1))];
  const double u = rng->Uniform();
  const double predict_hi = options.predict_fraction;
  const double ll_hi = predict_hi + options.ll_window_fraction;
  const double batch_hi = ll_hi + options.batch_fraction;
  const double subscribe_hi = batch_hi + options.subscribe_fraction;
  ScheduledRequest req;
  req.tick = tick;
  req.seq = seq;
  req.client = client;
  req.offset_micros = offset_micros;
  Json body = Json::MakeObject();
  if (u < predict_hi) {
    req.verb = "predict";
    body["verb"] = "predict";
    body["server_id"] = server;
  } else if (u < ll_hi) {
    req.verb = "ll_window";
    body["verb"] = "ll_window";
    body["server_id"] = server;
    body["duration_minutes"] = 60;
  } else if (u < batch_hi) {
    req.verb = "batch_predict";
    body["verb"] = "predict";
    Json servers = Json::MakeArray();
    servers.Append(Json(server));
    for (int64_t i = 1; i < options.batch_size; ++i) {
      servers.Append(Json(server_ids[static_cast<size_t>(rng->UniformInt(
          0, static_cast<int64_t>(server_ids.size()) - 1))]));
    }
    body["servers"] = std::move(servers);
  } else if (u < subscribe_hi) {
    // Count the ids born before this tick (they form a prefix: births
    // arrive in tick order).
    size_t eligible = 0;
    while (eligible < subs->live.size() &&
           subs->live[eligible].second < tick) {
      ++eligible;
    }
    if (eligible > 0 && rng->Uniform() < 0.5) {
      const size_t pick = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(eligible) - 1));
      req.verb = "unsubscribe";
      body["verb"] = "unsubscribe";
      body["id"] = subs->live[pick].first;
      subs->live.erase(subs->live.begin() +
                       static_cast<std::ptrdiff_t>(pick));
    } else {
      std::string id = "lg-sub-" + std::to_string(subs->next_id++);
      req.verb = "subscribe_ll";
      body["verb"] = "subscribe_ll";
      body["id"] = id;
      body["server_id"] = server;
      body["duration_minutes"] = 60;
      subs->live.emplace_back(std::move(id), tick);
    }
  } else {
    req.verb = "ingest";
    body["verb"] = "ingest";
    body["server_id"] = server;
    body["seq"] = seq;
    Json series = Json::MakeObject();
    series["start"] =
        options.epoch_start + tick * kServerIntervalMinutes;
    series["interval"] = kServerIntervalMinutes;
    Json values = Json::MakeArray();
    values.Append(Quantize4(rng->Uniform(0.0, 100.0)));
    series["values"] = std::move(values);
    body["series"] = std::move(series);
  }
  req.body = body.Dump();
  out->push_back(std::move(req));
}

}  // namespace

std::vector<ScheduledRequest> BuildSchedule(
    const LoadgenOptions& options,
    const std::vector<std::string>& server_ids) {
  std::vector<ScheduledRequest> schedule;
  if (server_ids.empty() || options.ticks <= 0) return schedule;
  Rng rng(options.seed);
  SubSchedule subs;
  int64_t seq = 0;
  for (int64_t t = 0; t < options.ticks; ++t) {
    const int64_t per_source = ProfileRequestsAtTick(
        options.profile, options.base_requests_per_tick, t, options.ticks);
    if (options.mode == DriverMode::kOpenLoop) {
      // Fixed arrival schedule: exponential inter-arrival gaps spread
      // over the simulated 5-minute epoch.
      const double mean_gap_micros =
          per_source > 0
              ? static_cast<double>(kServerIntervalMinutes) * 60e6 /
                    static_cast<double>(per_source)
              : 0.0;
      double offset = 0.0;
      for (int64_t i = 0; i < per_source; ++i) {
        offset += rng.Exponential(mean_gap_micros);
        AppendRequest(options, server_ids, &rng, &subs, t, seq++,
                      /*client=*/0, static_cast<int64_t>(offset), &schedule);
      }
    } else {
      // Closed loop: every client issues `per_source` back-to-back
      // requests this epoch; arrival offsets are meaningless (issue
      // time depends on completion), so they stay 0.
      for (int64_t c = 0; c < options.closed_loop_clients; ++c) {
        for (int64_t i = 0; i < per_source; ++i) {
          AppendRequest(options, server_ids, &rng, &subs, t, seq++, c,
                        /*offset_micros=*/0, &schedule);
        }
      }
    }
  }
  return schedule;
}

Json LatencySummary::ToJson() const {
  Json doc = Json::MakeObject();
  doc["count"] = count;
  doc["errors"] = errors;
  doc["p50_micros"] = p50;
  doc["p95_micros"] = p95;
  doc["p99_micros"] = p99;
  return doc;
}

Json LoadgenReport::ToJson() const {
  Json doc = Json::MakeObject();
  doc["profile"] = LoadProfileName(profile);
  doc["mode"] = DriverModeName(mode);
  doc["requests"] = requests;
  doc["ok"] = ok;
  doc["errors"] = errors;
  doc["wall_millis"] = wall_millis;
  doc["throughput_rps"] = throughput_rps;
  doc["predictions"] = predictions;
  doc["prediction_throughput_ps"] = prediction_throughput_ps;
  Json lat = Json::MakeObject();
  for (const auto& [verb, summary] : latency) lat[verb] = summary.ToJson();
  doc["latency_micros"] = std::move(lat);
  Json ticks_doc = Json::MakeObject();
  ticks_doc["ticks"] = ticks;
  ticks_doc["refits"] = refits;
  ticks_doc["refit_failures"] = refit_failures;
  ticks_doc["clean_skips"] = clean_skips;
  ticks_doc["ingests_applied"] = ingests_applied;
  ticks_doc["refit_per_query"] = refit_per_query;
  doc["tick_loop"] = std::move(ticks_doc);
  doc["max_in_flight"] = max_in_flight;
  doc["notifications"] = notifications;
  doc["notify_lag_ticks"] = notify_lag_ticks;
  doc["response_digest"] = StringPrintf("%016llx",
                                        static_cast<unsigned long long>(
                                            response_digest));
  return doc;
}

LoadgenReport RunLoadTest(ServingEngine* engine,
                          const LoadgenOptions& options,
                          const std::vector<ScheduledRequest>& schedule) {
  LoadgenReport report;
  report.profile = options.profile;
  report.mode = options.mode;
  report.requests = static_cast<int64_t>(schedule.size());

  struct Outcome {
    double latency_micros = 0.0;
    bool ok = false;
  };
  std::vector<Outcome> outcomes(schedule.size());
  std::vector<std::string> responses(schedule.size());

  std::unique_ptr<ThreadPool> pool;
  if (options.jobs > 1) pool = std::make_unique<ThreadPool>(options.jobs);

  std::atomic<int64_t> in_flight{0};
  std::atomic<int64_t> max_in_flight{0};
  auto execute = [&](int64_t i) {
    const ScheduledRequest& req = schedule[static_cast<size_t>(i)];
    const int64_t depth = in_flight.fetch_add(1, std::memory_order_acq_rel) + 1;
    int64_t seen = max_in_flight.load(std::memory_order_relaxed);
    while (seen < depth &&
           !max_in_flight.compare_exchange_weak(seen, depth,
                                                std::memory_order_relaxed)) {
    }
    const int64_t t0 = ObsClock::NowMicros();
    std::string response = engine->Handle(req.body);
    Outcome& out = outcomes[static_cast<size_t>(i)];
    out.latency_micros = static_cast<double>(ObsClock::NowMicros() - t0);
    responses[static_cast<size_t>(i)] = std::move(response);
    in_flight.fetch_sub(1, std::memory_order_acq_rel);
  };

  // Every ingest's schedule tick, per server, in seq order — consumed
  // as subscription notifications fire to measure how many ticks an
  // ingested change waited before its window move was reported.
  std::map<std::string, std::vector<int64_t>> ingest_ticks;
  for (const auto& req : schedule) {
    if (req.verb != "ingest") continue;
    auto parsed = Json::Parse(req.body);
    ingest_ticks[(*parsed)["server_id"].AsString()].push_back(req.tick);
  }
  std::map<std::string, size_t> ingest_cursor;
  double lag_sum = 0.0;
  int64_t notify_count = 0;
  uint64_t notify_digest = kFnvOffset;

  const int64_t wall_t0 = ObsClock::NowMicros();
  size_t cursor = 0;
  for (int64_t t = 0; t < options.ticks; ++t) {
    const size_t begin = cursor;
    while (cursor < schedule.size() && schedule[cursor].tick == t) ++cursor;
    const int64_t count = static_cast<int64_t>(cursor - begin);
    if (count > 0 && options.mode == DriverMode::kOpenLoop) {
      if (pool != nullptr) {
        ParallelFor(pool.get(), count, [&](int64_t i) {
          execute(static_cast<int64_t>(begin) + i);
        });
      } else {
        SequentialFor(count, [&](int64_t i) {
          execute(static_cast<int64_t>(begin) + i);
        });
      }
    } else if (count > 0) {
      // Closed loop: one sequential stream per virtual client. Clients'
      // requests are contiguous within the epoch by construction.
      std::vector<std::pair<size_t, size_t>> clients;
      size_t c0 = begin;
      for (size_t i = begin + 1; i <= static_cast<size_t>(cursor); ++i) {
        if (i == static_cast<size_t>(cursor) ||
            schedule[i].client != schedule[c0].client) {
          clients.emplace_back(c0, i);
          c0 = i;
        }
      }
      auto run_client = [&](int64_t c) {
        const auto [lo, hi] = clients[static_cast<size_t>(c)];
        for (size_t i = lo; i < hi; ++i) {
          execute(static_cast<int64_t>(i));
        }
      };
      const int64_t n_clients = static_cast<int64_t>(clients.size());
      if (pool != nullptr) {
        ParallelForChunked(pool.get(), n_clients, /*grain=*/1,
                           [&](int64_t lo, int64_t hi) {
                             for (int64_t c = lo; c < hi; ++c) {
                               run_client(c);
                             }
                           });
      } else {
        SequentialFor(n_clients, run_client);
      }
    }
    TickResult tr = engine->Tick();
    ++report.ticks;
    report.refits += tr.refits;
    report.refit_failures += tr.refit_failures;
    report.clean_skips += tr.clean_skips;
    report.ingests_applied += tr.ingests_applied;
    for (const Notification& n : tr.notifications) {
      ++notify_count;
      const std::string dump = n.ToJson().Dump();
      notify_digest = Fnv1a(notify_digest, dump.data(), dump.size());
      // Consume this server's ingests up to the fire tick; the oldest
      // one consumed bounds how long the move waited to surface. The
      // server's first notification only sets the baseline — it drains
      // the backlog that accumulated before any subscription watched
      // (window moves without a subscriber consume nothing).
      auto it = ingest_ticks.find(n.server_id);
      if (it == ingest_ticks.end()) continue;
      const bool baseline =
          ingest_cursor.find(n.server_id) == ingest_cursor.end();
      size_t& pos = ingest_cursor[n.server_id];
      int64_t oldest = -1;
      while (pos < it->second.size() && it->second[pos] <= t) {
        if (oldest < 0) oldest = it->second[pos];
        ++pos;
      }
      if (!baseline && oldest >= 0) {
        lag_sum += static_cast<double>(t - oldest);
      }
    }
  }
  report.wall_millis =
      static_cast<double>(ObsClock::NowMicros() - wall_t0) / 1000.0;

  // Aggregation in schedule order: deterministic however the requests
  // actually interleaved.
  std::map<std::string, std::vector<double>> samples;
  int64_t queries = 0;
  uint64_t digest = kFnvOffset;
  for (size_t i = 0; i < schedule.size(); ++i) {
    const ScheduledRequest& req = schedule[i];
    Outcome& out = outcomes[i];
    auto parsed = Json::Parse(responses[i]);
    out.ok = parsed.ok() && (*parsed)["ok"].is_bool() &&
             (*parsed)["ok"].AsBool();
    LatencySummary& summary = report.latency[req.verb];
    ++summary.count;
    if (out.ok) {
      ++report.ok;
    } else {
      ++report.errors;
      ++summary.errors;
    }
    samples[req.verb].push_back(out.latency_micros);
    if (req.verb != "ingest") ++queries;
    if (req.verb == "predict") {
      ++report.predictions;
    } else if (req.verb == "batch_predict") {
      auto body = Json::Parse(req.body);
      report.predictions +=
          static_cast<int64_t>((*body)["servers"].AsArray().size());
    }
    digest = Fnv1a(digest, &req.seq, sizeof(req.seq));
    digest = Fnv1a(digest, responses[i].data(), responses[i].size());
  }
  for (auto& [verb, verb_samples] : samples) {
    LatencySummary& summary = report.latency[verb];
    summary.p50 = Percentile(&verb_samples, 0.5);
    summary.p95 = Percentile(&verb_samples, 0.95);
    summary.p99 = Percentile(&verb_samples, 0.99);
  }
  report.refit_per_query =
      static_cast<double>(report.refits) /
      static_cast<double>(std::max<int64_t>(1, queries));
  report.max_in_flight = max_in_flight.load(std::memory_order_relaxed);
  report.notifications = notify_count;
  report.notify_lag_ticks =
      notify_count > 0 ? lag_sum / static_cast<double>(notify_count) : 0.0;
  digest = Fnv1a(digest, &notify_digest, sizeof(notify_digest));
  report.response_digest = digest;
  report.throughput_rps =
      report.wall_millis > 0.0
          ? static_cast<double>(report.requests) * 1000.0 /
                report.wall_millis
          : 0.0;
  report.prediction_throughput_ps =
      report.wall_millis > 0.0
          ? static_cast<double>(report.predictions) * 1000.0 /
                report.wall_millis
          : 0.0;
  return report;
}

}  // namespace seagull
