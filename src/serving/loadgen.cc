#include "serving/loadgen.h"

#include <algorithm>
#include <atomic>

#include "common/obs/clock.h"
#include "common/random.h"
#include "common/strings.h"

namespace seagull {

namespace {

/// Quantizes to the telemetry data plane's %.4f grid so ingest payloads
/// survive a JSON round trip bit-for-bit.
double Quantize4(double v) {
  return std::floor(v * 10000.0 + 0.5) / 10000.0;
}

double Percentile(std::vector<double>* samples, double q) {
  if (samples->empty()) return 0.0;
  std::sort(samples->begin(), samples->end());
  const double idx = q * static_cast<double>(samples->size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, samples->size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return (*samples)[lo] + frac * ((*samples)[hi] - (*samples)[lo]);
}

uint64_t Fnv1a(uint64_t hash, const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;

}  // namespace

const char* LoadProfileName(LoadProfile profile) {
  switch (profile) {
    case LoadProfile::kRamp:
      return "ramp";
    case LoadProfile::kSpike:
      return "spike";
    case LoadProfile::kSoak:
      return "soak";
  }
  return "unknown";
}

Result<LoadProfile> ParseLoadProfile(const std::string& name) {
  if (name == "ramp") return LoadProfile::kRamp;
  if (name == "spike") return LoadProfile::kSpike;
  if (name == "soak") return LoadProfile::kSoak;
  return Status::Invalid("unknown load profile: " + name);
}

const char* DriverModeName(DriverMode mode) {
  return mode == DriverMode::kOpenLoop ? "open" : "closed";
}

Result<DriverMode> ParseDriverMode(const std::string& name) {
  if (name == "open") return DriverMode::kOpenLoop;
  if (name == "closed") return DriverMode::kClosedLoop;
  return Status::Invalid("unknown driver mode: " + name);
}

int64_t ProfileRequestsAtTick(LoadProfile profile, int64_t base, int64_t t,
                              int64_t ticks) {
  if (base <= 0 || ticks <= 0 || t < 0 || t >= ticks) return 0;
  switch (profile) {
    case LoadProfile::kRamp:
      // Linear climb ending at the full base rate on the last tick.
      return base * (t + 1) / ticks;
    case LoadProfile::kSpike: {
      // Quiet baseline with a 3x burst over the middle tenth.
      const int64_t burst_start = ticks / 2;
      const int64_t burst_len = std::max<int64_t>(1, ticks / 10);
      if (t >= burst_start && t < burst_start + burst_len) return base * 3;
      return std::max<int64_t>(1, base / 4);
    }
    case LoadProfile::kSoak:
      return base;
  }
  return 0;
}

int64_t ProfileTotalRequests(LoadProfile profile, int64_t base,
                             int64_t ticks) {
  int64_t total = 0;
  for (int64_t t = 0; t < ticks; ++t) {
    total += ProfileRequestsAtTick(profile, base, t, ticks);
  }
  return total;
}

namespace {

/// Appends one request drawn from `rng` for epoch `tick` to `out`.
void AppendRequest(const LoadgenOptions& options,
                   const std::vector<std::string>& server_ids, Rng* rng,
                   int64_t tick, int64_t seq, int64_t client,
                   int64_t offset_micros,
                   std::vector<ScheduledRequest>* out) {
  const std::string& server =
      server_ids[static_cast<size_t>(rng->UniformInt(
          0, static_cast<int64_t>(server_ids.size()) - 1))];
  const double u = rng->Uniform();
  ScheduledRequest req;
  req.tick = tick;
  req.seq = seq;
  req.client = client;
  req.offset_micros = offset_micros;
  Json body = Json::MakeObject();
  body["server_id"] = server;
  if (u < options.predict_fraction) {
    req.verb = "predict";
    body["verb"] = "predict";
  } else if (u < options.predict_fraction + options.ll_window_fraction) {
    req.verb = "ll_window";
    body["verb"] = "ll_window";
    body["duration_minutes"] = 60;
  } else {
    req.verb = "ingest";
    body["verb"] = "ingest";
    body["seq"] = seq;
    Json series = Json::MakeObject();
    series["start"] =
        options.epoch_start + tick * kServerIntervalMinutes;
    series["interval"] = kServerIntervalMinutes;
    Json values = Json::MakeArray();
    values.Append(Quantize4(rng->Uniform(0.0, 100.0)));
    series["values"] = std::move(values);
    body["series"] = std::move(series);
  }
  req.body = body.Dump();
  out->push_back(std::move(req));
}

}  // namespace

std::vector<ScheduledRequest> BuildSchedule(
    const LoadgenOptions& options,
    const std::vector<std::string>& server_ids) {
  std::vector<ScheduledRequest> schedule;
  if (server_ids.empty() || options.ticks <= 0) return schedule;
  Rng rng(options.seed);
  int64_t seq = 0;
  for (int64_t t = 0; t < options.ticks; ++t) {
    const int64_t per_source = ProfileRequestsAtTick(
        options.profile, options.base_requests_per_tick, t, options.ticks);
    if (options.mode == DriverMode::kOpenLoop) {
      // Fixed arrival schedule: exponential inter-arrival gaps spread
      // over the simulated 5-minute epoch.
      const double mean_gap_micros =
          per_source > 0
              ? static_cast<double>(kServerIntervalMinutes) * 60e6 /
                    static_cast<double>(per_source)
              : 0.0;
      double offset = 0.0;
      for (int64_t i = 0; i < per_source; ++i) {
        offset += rng.Exponential(mean_gap_micros);
        AppendRequest(options, server_ids, &rng, t, seq++, /*client=*/0,
                      static_cast<int64_t>(offset), &schedule);
      }
    } else {
      // Closed loop: every client issues `per_source` back-to-back
      // requests this epoch; arrival offsets are meaningless (issue
      // time depends on completion), so they stay 0.
      for (int64_t c = 0; c < options.closed_loop_clients; ++c) {
        for (int64_t i = 0; i < per_source; ++i) {
          AppendRequest(options, server_ids, &rng, t, seq++, c,
                        /*offset_micros=*/0, &schedule);
        }
      }
    }
  }
  return schedule;
}

Json LatencySummary::ToJson() const {
  Json doc = Json::MakeObject();
  doc["count"] = count;
  doc["errors"] = errors;
  doc["p50_micros"] = p50;
  doc["p95_micros"] = p95;
  doc["p99_micros"] = p99;
  return doc;
}

Json LoadgenReport::ToJson() const {
  Json doc = Json::MakeObject();
  doc["profile"] = LoadProfileName(profile);
  doc["mode"] = DriverModeName(mode);
  doc["requests"] = requests;
  doc["ok"] = ok;
  doc["errors"] = errors;
  doc["wall_millis"] = wall_millis;
  doc["throughput_rps"] = throughput_rps;
  Json lat = Json::MakeObject();
  for (const auto& [verb, summary] : latency) lat[verb] = summary.ToJson();
  doc["latency_micros"] = std::move(lat);
  Json ticks_doc = Json::MakeObject();
  ticks_doc["ticks"] = ticks;
  ticks_doc["refits"] = refits;
  ticks_doc["refit_failures"] = refit_failures;
  ticks_doc["clean_skips"] = clean_skips;
  ticks_doc["ingests_applied"] = ingests_applied;
  ticks_doc["refit_per_query"] = refit_per_query;
  doc["tick_loop"] = std::move(ticks_doc);
  doc["max_in_flight"] = max_in_flight;
  doc["response_digest"] = StringPrintf("%016llx",
                                        static_cast<unsigned long long>(
                                            response_digest));
  return doc;
}

LoadgenReport RunLoadTest(ServingEngine* engine,
                          const LoadgenOptions& options,
                          const std::vector<ScheduledRequest>& schedule) {
  LoadgenReport report;
  report.profile = options.profile;
  report.mode = options.mode;
  report.requests = static_cast<int64_t>(schedule.size());

  struct Outcome {
    double latency_micros = 0.0;
    bool ok = false;
  };
  std::vector<Outcome> outcomes(schedule.size());
  std::vector<std::string> responses(schedule.size());

  std::unique_ptr<ThreadPool> pool;
  if (options.jobs > 1) pool = std::make_unique<ThreadPool>(options.jobs);

  std::atomic<int64_t> in_flight{0};
  std::atomic<int64_t> max_in_flight{0};
  auto execute = [&](int64_t i) {
    const ScheduledRequest& req = schedule[static_cast<size_t>(i)];
    const int64_t depth = in_flight.fetch_add(1, std::memory_order_acq_rel) + 1;
    int64_t seen = max_in_flight.load(std::memory_order_relaxed);
    while (seen < depth &&
           !max_in_flight.compare_exchange_weak(seen, depth,
                                                std::memory_order_relaxed)) {
    }
    const int64_t t0 = ObsClock::NowMicros();
    std::string response = engine->Handle(req.body);
    Outcome& out = outcomes[static_cast<size_t>(i)];
    out.latency_micros = static_cast<double>(ObsClock::NowMicros() - t0);
    responses[static_cast<size_t>(i)] = std::move(response);
    in_flight.fetch_sub(1, std::memory_order_acq_rel);
  };

  const int64_t wall_t0 = ObsClock::NowMicros();
  size_t cursor = 0;
  for (int64_t t = 0; t < options.ticks; ++t) {
    const size_t begin = cursor;
    while (cursor < schedule.size() && schedule[cursor].tick == t) ++cursor;
    const int64_t count = static_cast<int64_t>(cursor - begin);
    if (count > 0 && options.mode == DriverMode::kOpenLoop) {
      if (pool != nullptr) {
        ParallelFor(pool.get(), count, [&](int64_t i) {
          execute(static_cast<int64_t>(begin) + i);
        });
      } else {
        SequentialFor(count, [&](int64_t i) {
          execute(static_cast<int64_t>(begin) + i);
        });
      }
    } else if (count > 0) {
      // Closed loop: one sequential stream per virtual client. Clients'
      // requests are contiguous within the epoch by construction.
      std::vector<std::pair<size_t, size_t>> clients;
      size_t c0 = begin;
      for (size_t i = begin + 1; i <= static_cast<size_t>(cursor); ++i) {
        if (i == static_cast<size_t>(cursor) ||
            schedule[i].client != schedule[c0].client) {
          clients.emplace_back(c0, i);
          c0 = i;
        }
      }
      auto run_client = [&](int64_t c) {
        const auto [lo, hi] = clients[static_cast<size_t>(c)];
        for (size_t i = lo; i < hi; ++i) {
          execute(static_cast<int64_t>(i));
        }
      };
      const int64_t n_clients = static_cast<int64_t>(clients.size());
      if (pool != nullptr) {
        ParallelForChunked(pool.get(), n_clients, /*grain=*/1,
                           [&](int64_t lo, int64_t hi) {
                             for (int64_t c = lo; c < hi; ++c) {
                               run_client(c);
                             }
                           });
      } else {
        SequentialFor(n_clients, run_client);
      }
    }
    TickResult tr = engine->Tick();
    ++report.ticks;
    report.refits += tr.refits;
    report.refit_failures += tr.refit_failures;
    report.clean_skips += tr.clean_skips;
    report.ingests_applied += tr.ingests_applied;
  }
  report.wall_millis =
      static_cast<double>(ObsClock::NowMicros() - wall_t0) / 1000.0;

  // Aggregation in schedule order: deterministic however the requests
  // actually interleaved.
  std::map<std::string, std::vector<double>> samples;
  int64_t queries = 0;
  uint64_t digest = kFnvOffset;
  for (size_t i = 0; i < schedule.size(); ++i) {
    const ScheduledRequest& req = schedule[i];
    Outcome& out = outcomes[i];
    auto parsed = Json::Parse(responses[i]);
    out.ok = parsed.ok() && (*parsed)["ok"].is_bool() &&
             (*parsed)["ok"].AsBool();
    LatencySummary& summary = report.latency[req.verb];
    ++summary.count;
    if (out.ok) {
      ++report.ok;
    } else {
      ++report.errors;
      ++summary.errors;
    }
    samples[req.verb].push_back(out.latency_micros);
    if (req.verb != "ingest") ++queries;
    digest = Fnv1a(digest, &req.seq, sizeof(req.seq));
    digest = Fnv1a(digest, responses[i].data(), responses[i].size());
  }
  for (auto& [verb, verb_samples] : samples) {
    LatencySummary& summary = report.latency[verb];
    summary.p50 = Percentile(&verb_samples, 0.5);
    summary.p95 = Percentile(&verb_samples, 0.95);
    summary.p99 = Percentile(&verb_samples, 0.99);
  }
  report.refit_per_query =
      static_cast<double>(report.refits) /
      static_cast<double>(std::max<int64_t>(1, queries));
  report.max_in_flight = max_in_flight.load(std::memory_order_relaxed);
  report.response_digest = digest;
  report.throughput_rps =
      report.wall_millis > 0.0
          ? static_cast<double>(report.requests) * 1000.0 /
                report.wall_millis
          : 0.0;
  return report;
}

}  // namespace seagull
