#include "serving/engine.h"

#include <algorithm>

#include "common/fault.h"
#include "common/obs/clock.h"
#include "common/obs/op.h"
#include "common/random.h"
#include "forecast/batch.h"
#include "forecast/model.h"
#include "metrics/ll_window.h"

namespace seagull {

namespace {

std::string ErrorResponse(const Status& status) {
  Json doc = Json::MakeObject();
  doc["ok"] = false;
  doc["error"] = status.message();
  doc["code"] = StatusCodeToString(status.code());
  return doc.Dump();
}

Json WindowToJson(const WindowResult& window) {
  Json doc = Json::MakeObject();
  doc["start"] = window.start;
  doc["duration_minutes"] = window.duration_minutes;
  doc["average_load"] = window.average_load;
  return doc;
}

}  // namespace

Json Notification::ToJson() const {
  Json doc = Json::MakeObject();
  doc["type"] = "notification";
  doc["id"] = subscription_id;
  doc["server_id"] = server_id;
  doc["tick"] = tick;
  doc["window"] = WindowToJson(window);
  doc["previous_start"] = previous_start;
  return doc;
}

Json TickResult::ToJson() const {
  Json doc = Json::MakeObject();
  doc["ok"] = true;
  doc["tick"] = tick;
  doc["ingests_applied"] = ingests_applied;
  doc["refits"] = refits;
  doc["refit_failures"] = refit_failures;
  doc["clean_skips"] = clean_skips;
  if (batch_groups > 0) {
    doc["batch_groups"] = batch_groups;
    doc["batch_shared"] = batch_shared;
  }
  if (!notifications.empty()) {
    Json records = Json::MakeArray();
    for (const auto& n : notifications) records.Append(n.ToJson());
    doc["notifications"] = std::move(records);
  }
  return doc;
}

ServingEngine::ServingEngine(ModelEndpoint endpoint, ServingOptions options)
    : endpoint_(std::move(endpoint)), options_(options) {
  if (options_.shards < 1) options_.shards = 1;
  if (options_.horizon_minutes <= 0) options_.horizon_minutes = kMinutesPerDay;
  if (options_.max_batch_servers < 1) options_.max_batch_servers = 1;
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  published_.store(std::make_shared<const FleetEpoch>(),
                   std::memory_order_release);
  auto& reg = MetricsRegistry::Global();
  dirty_marks_ = reg.GetCounter("seagull.serving.dirty_marks");
  refits_ = reg.GetCounter("seagull.serving.refits");
  refit_failures_ = reg.GetCounter("seagull.serving.refit_failures");
  ticks_ = reg.GetCounter("seagull.serving.ticks");
  notifications_ = reg.GetCounter("seagull.serving.notifications");
  queue_depth_ = reg.GetGauge("seagull.serving.queue_depth");
  servers_gauge_ = reg.GetGauge("seagull.serving.servers");
  subscriptions_gauge_ = reg.GetGauge("seagull.serving.subscriptions");
  tick_micros_ = reg.GetHistogram("seagull.serving.tick_micros");
}

ServingEngine::Shard& ServingEngine::ShardOf(const std::string& server_id) {
  return *shards_[Rng::HashString(server_id) %
                  static_cast<uint64_t>(shards_.size())];
}

const ServingEngine::Shard& ServingEngine::ShardOf(
    const std::string& server_id) const {
  return *shards_[Rng::HashString(server_id) %
                  static_cast<uint64_t>(shards_.size())];
}

Status ServingEngine::Bootstrap(const std::vector<ServerTelemetry>& fleet) {
  for (const auto& st : fleet) {
    if (st.server_id.empty()) {
      return Status::Invalid("bootstrap telemetry has an empty server id");
    }
    Shard& shard = ShardOf(st.server_id);
    std::lock_guard<std::mutex> lock(shard.mu);
    ServerState& state = shard.servers[st.server_id];
    state.tail = st.load;
    if (state.tail.end() - state.tail.start() > options_.tail_cap_minutes) {
      state.tail = state.tail.Slice(
          state.tail.end() - options_.tail_cap_minutes, state.tail.end());
    }
    state.dirty = true;
  }
  // Publish entries (without forecasts) for the new servers so queries
  // distinguish "awaiting first tick" from "unknown server" without
  // touching the shards.
  auto prev = Snapshot();
  auto next = std::make_shared<FleetEpoch>();
  next->epoch = prev->epoch;
  next->servers = prev->servers;
  for (const auto& st : fleet) next->servers.try_emplace(st.server_id);
  published_.store(std::move(next), std::memory_order_release);
  dirty_marks_->Increment(static_cast<int64_t>(fleet.size()));
  servers_gauge_->Set(static_cast<double>(server_count()));
  return Status::OK();
}

int64_t ServingEngine::server_count() const {
  int64_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += static_cast<int64_t>(shard->servers.size());
  }
  return n;
}

int64_t ServingEngine::subscription_count() const {
  std::lock_guard<std::mutex> lock(subs_mu_);
  return static_cast<int64_t>(subs_.size());
}

bool ServingEngine::IsRegistered(const std::string& server_id) const {
  const Shard& shard = ShardOf(server_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.servers.find(server_id) != shard.servers.end();
}

Result<Json> ServingEngine::PredictFromSnapshot(const FleetEpoch& snap,
                                                const std::string& server_id,
                                                const Json& request) {
  if (server_id.empty()) {
    return Status::Invalid("server id must not be empty");
  }
  auto it = snap.servers.find(server_id);
  if (it == snap.servers.end()) {
    // Cold path: an ingest may have registered the server after this
    // epoch published.
    if (IsRegistered(server_id)) {
      return Status::FailedPrecondition("no forecast for server " +
                                        server_id +
                                        " yet (awaiting first tick)");
    }
    return Status::NotFound("engine serves no server " + server_id);
  }
  const EpochEntry& entry = it->second;
  if (entry.forecast == nullptr) {
    return Status::FailedPrecondition(
        "no forecast for server " + server_id +
        (entry.last_error.empty() ? " yet (awaiting first tick)"
                                  : ": last refit failed: " +
                                        entry.last_error));
  }
  Json doc = Json::MakeObject();
  doc["ok"] = true;
  doc["tick"] = entry.last_refit_tick;
  if (request.Contains("start") || request.Contains("horizon_minutes")) {
    SEAGULL_ASSIGN_OR_RETURN(double start, request.GetNumber("start"));
    SEAGULL_ASSIGN_OR_RETURN(double horizon,
                             request.GetNumber("horizon_minutes"));
    if (static_cast<int64_t>(horizon) <= 0) {
      return Status::Invalid("horizon must be positive");
    }
    LoadSeries sliced = entry.forecast->Slice(
        static_cast<MinuteStamp>(start),
        static_cast<MinuteStamp>(start) + static_cast<int64_t>(horizon));
    if (sliced.empty()) {
      return Status::FailedPrecondition(
          "requested range is outside the cached forecast for " + server_id);
    }
    doc["forecast"] = SeriesToJson(sliced);
  } else {
    doc["forecast"] = SeriesToJson(*entry.forecast);
  }
  return doc;
}

Result<Json> ServingEngine::HandlePredict(const Json& request) {
  if (request.Contains("recent")) {
    // Stateless path: the ForecastService wire contract — the request
    // carries its own telemetry and the endpoint predicts from it.
    SEAGULL_ASSIGN_OR_RETURN(ForecastRequest req,
                             ForecastRequest::FromJson(request));
    SEAGULL_ASSIGN_OR_RETURN(
        LoadSeries forecast,
        endpoint_.Predict(req.server_id, req.recent, req.start,
                          req.horizon_minutes));
    Json doc = Json::MakeObject();
    doc["ok"] = true;
    doc["model_version"] = endpoint_.version();
    doc["forecast"] = SeriesToJson(forecast);
    return doc;
  }

  // Stateful path: one snapshot load, no locks, no waiting on refits.
  SEAGULL_ASSIGN_OR_RETURN(std::string server_id,
                           request.GetString("server_id"));
  std::shared_ptr<const FleetEpoch> snap = Snapshot();
  SEAGULL_ASSIGN_OR_RETURN(Json doc,
                           PredictFromSnapshot(*snap, server_id, request));
  doc["model_version"] = endpoint_.version();
  doc["epoch"] = snap->epoch;
  return doc;
}

Result<Json> ServingEngine::HandleBatchPredict(const Json& request) {
  const Json& servers = request["servers"];
  if (!servers.is_array()) {
    return Status::Invalid("servers must be an array of server ids");
  }
  const auto& list = servers.AsArray();
  if (list.empty()) {
    return Status::Invalid("servers array is empty");
  }
  if (static_cast<int64_t>(list.size()) > options_.max_batch_servers) {
    return Status::Invalid(
        "batch predict exceeds max_batch_servers (" +
        std::to_string(options_.max_batch_servers) + ")");
  }
  for (const auto& id : list) {
    if (!id.is_string()) {
      return Status::Invalid("servers array holds a non-string id");
    }
  }

  // Every entry answers from this one snapshot: a tick swapping halfway
  // through the loop cannot split the batch across epochs.
  std::shared_ptr<const FleetEpoch> snap = Snapshot();
  Json results = Json::MakeArray();
  int64_t ok_count = 0;
  for (const auto& id : list) {
    const std::string server_id = id.AsString();
    Result<Json> entry = PredictFromSnapshot(*snap, server_id, request);
    if (entry.ok()) {
      (*entry)["server_id"] = server_id;
      ++ok_count;
      results.Append(std::move(*entry));
    } else {
      Json failure = Json::MakeObject();
      failure["server_id"] = server_id;
      failure["ok"] = false;
      failure["error"] = entry.status().message();
      failure["code"] = StatusCodeToString(entry.status().code());
      results.Append(std::move(failure));
    }
  }
  Json doc = Json::MakeObject();
  doc["ok"] = true;
  doc["model_version"] = endpoint_.version();
  doc["epoch"] = snap->epoch;
  doc["served"] = ok_count;
  doc["failed"] = static_cast<int64_t>(list.size()) - ok_count;
  doc["results"] = std::move(results);
  return doc;
}

Result<Json> ServingEngine::HandleLLWindow(const Json& request) {
  SEAGULL_ASSIGN_OR_RETURN(std::string server_id,
                           request.GetString("server_id"));
  if (server_id.empty()) {
    return Status::Invalid("server id must not be empty");
  }
  const int64_t duration = static_cast<int64_t>(
      request.Contains("duration_minutes")
          ? request["duration_minutes"].AsDouble()
          : 60);
  if (duration <= 0) return Status::Invalid("duration must be positive");

  std::shared_ptr<const FleetEpoch> snap = Snapshot();
  auto it = snap->servers.find(server_id);
  if (it == snap->servers.end()) {
    if (IsRegistered(server_id)) {
      return Status::FailedPrecondition("no forecast for server " +
                                        server_id + " yet");
    }
    return Status::NotFound("engine serves no server " + server_id);
  }
  if (it->second.forecast == nullptr) {
    return Status::FailedPrecondition("no forecast for server " + server_id +
                                      " yet");
  }
  const LoadSeries& forecast = *it->second.forecast;
  const int64_t day = static_cast<int64_t>(
      request.Contains("day") ? request["day"].AsDouble()
                              : DayIndex(forecast.start()));
  WindowResult window = LowestLoadWindow(forecast, day, duration);
  if (!window.found) {
    return Status::FailedPrecondition(
        "cached forecast covers no complete window on day " +
        std::to_string(day));
  }
  Json doc = Json::MakeObject();
  doc["ok"] = true;
  doc["model_version"] = endpoint_.version();
  doc["tick"] = it->second.last_refit_tick;
  doc["epoch"] = snap->epoch;
  doc["window"] = WindowToJson(window);
  return doc;
}

Result<Json> ServingEngine::HandleSubscribe(const Json& request) {
  SEAGULL_ASSIGN_OR_RETURN(std::string server_id,
                           request.GetString("server_id"));
  if (server_id.empty()) {
    return Status::Invalid("server id must not be empty");
  }
  const int64_t duration = static_cast<int64_t>(
      request.Contains("duration_minutes")
          ? request["duration_minutes"].AsDouble()
          : 60);
  if (duration <= 0) return Status::Invalid("duration must be positive");
  std::string id;
  if (request.Contains("id")) {
    SEAGULL_ASSIGN_OR_RETURN(id, request.GetString("id"));
    if (id.empty()) return Status::Invalid("subscription id must not be empty");
  } else {
    id = "sub-" +
         std::to_string(sub_seq_.fetch_add(1, std::memory_order_relaxed));
  }

  std::shared_ptr<const FleetEpoch> snap = Snapshot();
  auto it = snap->servers.find(server_id);
  if (it == snap->servers.end() && !IsRegistered(server_id)) {
    return Status::NotFound("engine serves no server " + server_id);
  }

  Subscription sub;
  sub.server_id = server_id;
  sub.duration_minutes = duration;
  if (it != snap->servers.end() && it->second.forecast != nullptr) {
    const LoadSeries& forecast = *it->second.forecast;
    sub.watermark = LowestLoadWindow(
        forecast, DayIndex(forecast.start()), duration);
    sub.armed = sub.watermark.found;
  }
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    subs_[id] = sub;
    subscriptions_gauge_->Set(static_cast<double>(subs_.size()));
  }
  Json doc = Json::MakeObject();
  doc["ok"] = true;
  doc["id"] = id;
  doc["server_id"] = server_id;
  doc["duration_minutes"] = duration;
  doc["epoch"] = snap->epoch;
  doc["armed"] = sub.armed;
  if (sub.armed) doc["window"] = WindowToJson(sub.watermark);
  return doc;
}

Result<Json> ServingEngine::HandleUnsubscribe(const Json& request) {
  SEAGULL_ASSIGN_OR_RETURN(std::string id, request.GetString("id"));
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    auto it = subs_.find(id);
    if (it == subs_.end()) {
      return Status::NotFound("no subscription " + id);
    }
    subs_.erase(it);
    subscriptions_gauge_->Set(static_cast<double>(subs_.size()));
  }
  Json doc = Json::MakeObject();
  doc["ok"] = true;
  doc["id"] = id;
  return doc;
}

Result<Json> ServingEngine::HandleIngest(const Json& request) {
  SEAGULL_ASSIGN_OR_RETURN(std::string server_id,
                           request.GetString("server_id"));
  if (server_id.empty()) {
    return Status::Invalid("server id must not be empty");
  }
  if (!request["series"].is_object()) {
    return Status::Invalid("ingest request has no series object");
  }
  SEAGULL_ASSIGN_OR_RETURN(LoadSeries increment,
                           SeriesFromJson(request["series"]));
  if (increment.empty()) {
    return Status::Invalid("ingest increment is empty");
  }
  const int64_t seq =
      request.Contains("seq")
          ? static_cast<int64_t>(request["seq"].AsDouble())
          : arrival_seq_.fetch_add(1, std::memory_order_relaxed);
  {
    Shard& shard = ShardOf(server_id);
    std::lock_guard<std::mutex> lock(shard.mu);
    ServerState& state = shard.servers[server_id];  // auto-registers
    // Enforce one grid per server here so tick-time merges cannot fail:
    // the increment must match the tail's interval, or — for a freshly
    // registered server — the interval of any already-pending increment.
    const int64_t grid = !state.tail.empty()
                             ? state.tail.interval_minutes()
                             : (!state.pending.empty()
                                    ? state.pending.front()
                                          .second.interval_minutes()
                                    : increment.interval_minutes());
    if (increment.interval_minutes() != grid) {
      return Status::Invalid(
          "increment interval does not match the server's telemetry grid");
    }
    state.pending.emplace_back(seq, std::move(increment));
  }
  pending_count_.fetch_add(1, std::memory_order_relaxed);
  queue_depth_->Set(
      static_cast<double>(pending_count_.load(std::memory_order_relaxed)));
  Json doc = Json::MakeObject();
  doc["ok"] = true;
  doc["server_id"] = server_id;
  doc["seq"] = seq;
  return doc;
}

std::string ServingEngine::Handle(const std::string& request_text) {
  auto parsed = Json::Parse(request_text);
  if (!parsed.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(parsed.status());
  }
  // Verb defaulting keeps the ForecastService wire form valid as-is.
  const std::string verb =
      parsed->Contains("verb") ? (*parsed)["verb"].AsString() : "predict";
  const bool batch = verb == "predict" && parsed->Contains("servers");
  Result<Json> response = Status::Invalid("unknown verb " + verb);
  {
    const char* op = "unknown";
    if (verb == "predict") op = batch ? "batch_predict" : "predict";
    if (verb == "ll_window") op = "ll_window";
    if (verb == "subscribe_ll") op = "subscribe";
    if (verb == "unsubscribe") op = "unsubscribe";
    if (verb == "ingest") op = "ingest";
    ObsOp obs_op("seagull.serving", op);
    if (verb == "predict") {
      response = batch ? HandleBatchPredict(*parsed) : HandlePredict(*parsed);
    }
    if (verb == "ll_window") response = HandleLLWindow(*parsed);
    if (verb == "subscribe_ll") response = HandleSubscribe(*parsed);
    if (verb == "unsubscribe") response = HandleUnsubscribe(*parsed);
    if (verb == "ingest") response = HandleIngest(*parsed);
    response = obs_op.Done(std::move(response));
  }
  if (!response.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(response.status());
  }
  served_.fetch_add(1, std::memory_order_relaxed);
  return response->Dump();
}

TickResult ServingEngine::Tick() {
  const int64_t t0 = ObsClock::NowMicros();
  TickResult result;
  result.tick = tick_.load(std::memory_order_acquire) + 1;

  // Phase 1 — drain pending ingests into the tick-owned tails, in seq
  // order, and collect the dirty set. Per-shard locking; the sorted
  // merge makes the outcome independent of arrival interleaving. Dirty
  // flags clear at collection time: a server collected here is refit
  // (or fails its refit) this tick either way.
  struct RefitTask {
    std::string id;
    ServerState* state;  ///< stable: map nodes never move
    EpochEntry* entry = nullptr;  ///< this task's shadow slot
    Status injected;              ///< serving.refit fault decision
  };
  std::vector<RefitTask> tasks;
  int64_t total_servers = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total_servers += static_cast<int64_t>(shard->servers.size());
    for (auto& [id, state] : shard->servers) {
      if (!state.pending.empty()) {
        std::sort(state.pending.begin(), state.pending.end(),
                  [](const auto& a, const auto& b) {
                    return a.first < b.first;
                  });
        for (auto& [seq, increment] : state.pending) {
          (void)seq;
          state.tail.MergeFrom(increment).Abort();
        }
        result.ingests_applied +=
            static_cast<int64_t>(state.pending.size());
        pending_count_.fetch_sub(
            static_cast<int64_t>(state.pending.size()),
            std::memory_order_relaxed);
        state.pending.clear();
        if (state.tail.end() - state.tail.start() >
            options_.tail_cap_minutes) {
          state.tail = state.tail.Slice(
              state.tail.end() - options_.tail_cap_minutes,
              state.tail.end());
        }
        if (!state.dirty) {
          state.dirty = true;
          dirty_marks_->Increment();
        }
      }
      if (state.dirty) {
        state.dirty = false;
        tasks.push_back({id, &state, nullptr, Status::OK()});
      } else {
        ++result.clean_skips;
      }
    }
  }
  std::sort(tasks.begin(), tasks.end(),
            [](const RefitTask& a, const RefitTask& b) {
              return a.id < b.id;
            });

  // Phase 2 — build the shadow epoch: copy the published entry table
  // (forecast series are shared, so this is O(servers) pointer copies)
  // and pin one slot per dirty server. Queries keep reading the
  // published epoch untouched for the entire refit fan-out.
  auto prev = Snapshot();
  auto next = std::make_shared<FleetEpoch>();
  next->epoch = result.tick;
  next->servers = prev->servers;
  for (auto& task : tasks) {
    task.entry = &next->servers.try_emplace(task.id).first->second;
    // One fault decision per dirty server per tick, on the tick thread
    // in sorted order — schedule-independent because decisions key on
    // (point, server id, per-key attempt index).
    task.injected = FaultRegistry::Global().Inject("serving.refit", task.id);
  }

  // Phase 3 — re-forecast the dirty set into the shadow entries. The
  // tails are stable for the rest of the tick (ingests only enqueue)
  // and each body writes only its own pre-pinned entry, so the fan-out
  // runs without any lock. A failed refit keeps the stale forecast.
  auto install = [&](RefitTask& task, Result<LoadSeries> forecast) {
    if (forecast.ok()) {
      task.entry->forecast = std::make_shared<const LoadSeries>(
          std::move(forecast).ValueUnsafe());
      task.entry->last_refit_tick = result.tick;
      task.entry->last_error.clear();
    } else {
      task.entry->last_error = forecast.status().ToString();
    }
  };
  const int64_t n = static_cast<int64_t>(tasks.size());
  if (options_.refit_model.empty()) {
    auto refit = [&](int64_t i) {
      RefitTask& task = tasks[static_cast<size_t>(i)];
      install(task,
              task.injected.ok()
                  ? endpoint_.Predict(task.id, task.state->tail,
                                      task.state->tail.end(),
                                      options_.horizon_minutes)
                  : Result<LoadSeries>(task.injected));
    };
    if (options_.pool != nullptr && n > 1) {
      ParallelFor(options_.pool, n, refit);
    } else {
      SequentialFor(n, refit);
    }
  } else {
    // Batched refit: group the non-faulted dirty tails by shape so the
    // expensive per-fit structures are built once per group, then each
    // fitted model forecasts its own horizon.
    std::vector<BatchTrainItem> items;
    std::vector<size_t> item_task;
    for (size_t i = 0; i < tasks.size(); ++i) {
      if (!tasks[i].injected.ok()) {
        install(tasks[i], tasks[i].injected);
        continue;
      }
      items.push_back({&tasks[i].state->tail});
      item_task.push_back(i);
    }
    BatchTrainStats batch_stats;
    auto fits = BatchTrainer::Fit(options_.refit_model, items,
                                  options_.pool, &batch_stats);
    result.batch_groups = batch_stats.groups;
    result.batch_shared = batch_stats.shared_fits;
    auto finish = [&](int64_t j) {
      RefitTask& task = tasks[item_task[static_cast<size_t>(j)]];
      auto forecast = [&]() -> Result<LoadSeries> {
        if (!fits.ok()) return fits.status();
        const BatchTrainResult& fit = (*fits)[static_cast<size_t>(j)];
        if (!fit.status.ok()) return fit.status;
        SEAGULL_ASSIGN_OR_RETURN(auto model,
                                 ModelFactory::Global().Restore(fit.doc));
        return model->Forecast(task.state->tail, task.state->tail.end(),
                               options_.horizon_minutes);
      }();
      install(task, std::move(forecast));
    };
    const int64_t fit_count = static_cast<int64_t>(items.size());
    if (options_.pool != nullptr && fit_count > 1) {
      ParallelFor(options_.pool, fit_count, finish);
    } else {
      SequentialFor(fit_count, finish);
    }
  }
  result.refits = n;
  for (const auto& task : tasks) {
    if (!task.entry->last_error.empty()) ++result.refit_failures;
  }

  // Phase 4 — publish: one atomic swap moves every query from the old
  // epoch to the new one. Readers holding the old snapshot finish on it
  // (stale-but-consistent); the shared_ptr keeps it alive until the
  // last of them drops it.
  published_.store(next, std::memory_order_release);
  tick_.store(result.tick, std::memory_order_release);

  // Phase 5 — subscriptions: evaluate against the epoch just published,
  // in sorted subscription-id order. Only servers refit this tick can
  // have moved their window, so clean servers cost nothing.
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    for (auto& [id, sub] : subs_) {
      auto it = next->servers.find(sub.server_id);
      if (it == next->servers.end() || it->second.forecast == nullptr) {
        continue;
      }
      if (it->second.last_refit_tick != result.tick) continue;
      const LoadSeries& forecast = *it->second.forecast;
      WindowResult window = LowestLoadWindow(
          forecast, DayIndex(forecast.start()), sub.duration_minutes);
      if (!window.found) continue;
      if (!sub.armed) {
        // First window this subscription observes: arm silently.
        sub.watermark = window;
        sub.armed = true;
        continue;
      }
      if (window.start == sub.watermark.start) {
        sub.watermark = window;  // refresh average, position unchanged
        continue;
      }
      Notification record;
      record.subscription_id = id;
      record.server_id = sub.server_id;
      record.tick = result.tick;
      record.window = window;
      record.previous_start = sub.watermark.start;
      result.notifications.push_back(std::move(record));
      sub.watermark = window;
    }
  }

  refits_->Increment(result.refits);
  refit_failures_->Increment(result.refit_failures);
  ticks_->Increment();
  notifications_->Increment(
      static_cast<int64_t>(result.notifications.size()));
  queue_depth_->Set(
      static_cast<double>(pending_count_.load(std::memory_order_relaxed)));
  servers_gauge_->Set(static_cast<double>(total_servers));
  tick_micros_->Observe(static_cast<double>(ObsClock::NowMicros() - t0));
  return result;
}

std::string ServingEngine::SnapshotText() const {
  std::shared_ptr<const FleetEpoch> snap = Snapshot();
  Json doc = Json::MakeObject();
  doc["tick"] = tick_.load(std::memory_order_acquire);
  doc["epoch"] = snap->epoch;
  doc["family"] = endpoint_.family();
  doc["model_version"] = endpoint_.version();
  Json servers = Json::MakeObject();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [id, state] : shard->servers) {
      Json s = Json::MakeObject();
      s["tail"] = SeriesToJson(state.tail);
      auto it = snap->servers.find(id);
      const EpochEntry* entry =
          it != snap->servers.end() ? &it->second : nullptr;
      s["forecast"] = entry != nullptr && entry->forecast != nullptr
                          ? SeriesToJson(*entry->forecast)
                          : Json();
      s["dirty"] = state.dirty;
      s["pending"] = static_cast<int64_t>(state.pending.size());
      s["last_refit_tick"] =
          entry != nullptr ? entry->last_refit_tick : int64_t{-1};
      s["last_error"] = entry != nullptr ? entry->last_error : "";
      servers[id] = std::move(s);
    }
  }
  doc["servers"] = std::move(servers);
  Json subs = Json::MakeObject();
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    for (const auto& [id, sub] : subs_) {
      Json s = Json::MakeObject();
      s["server_id"] = sub.server_id;
      s["duration_minutes"] = sub.duration_minutes;
      s["armed"] = sub.armed;
      if (sub.armed) s["window"] = WindowToJson(sub.watermark);
      subs[id] = std::move(s);
    }
  }
  doc["subscriptions"] = std::move(subs);
  return doc.Dump();
}

}  // namespace seagull
