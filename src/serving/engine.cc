#include "serving/engine.h"

#include <algorithm>

#include "common/fault.h"
#include "common/obs/clock.h"
#include "common/obs/op.h"
#include "common/random.h"
#include "metrics/ll_window.h"

namespace seagull {

namespace {

std::string ErrorResponse(const Status& status) {
  Json doc = Json::MakeObject();
  doc["ok"] = false;
  doc["error"] = status.message();
  doc["code"] = StatusCodeToString(status.code());
  return doc.Dump();
}

}  // namespace

Json TickResult::ToJson() const {
  Json doc = Json::MakeObject();
  doc["ok"] = true;
  doc["tick"] = tick;
  doc["ingests_applied"] = ingests_applied;
  doc["refits"] = refits;
  doc["refit_failures"] = refit_failures;
  doc["clean_skips"] = clean_skips;
  return doc;
}

ServingEngine::ServingEngine(ModelEndpoint endpoint, ServingOptions options)
    : endpoint_(std::move(endpoint)), options_(options) {
  if (options_.shards < 1) options_.shards = 1;
  if (options_.horizon_minutes <= 0) options_.horizon_minutes = kMinutesPerDay;
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  auto& reg = MetricsRegistry::Global();
  dirty_marks_ = reg.GetCounter("seagull.serving.dirty_marks");
  refits_ = reg.GetCounter("seagull.serving.refits");
  refit_failures_ = reg.GetCounter("seagull.serving.refit_failures");
  ticks_ = reg.GetCounter("seagull.serving.ticks");
  queue_depth_ = reg.GetGauge("seagull.serving.queue_depth");
  servers_gauge_ = reg.GetGauge("seagull.serving.servers");
  tick_micros_ = reg.GetHistogram("seagull.serving.tick_micros");
}

ServingEngine::Shard& ServingEngine::ShardOf(const std::string& server_id) {
  return *shards_[Rng::HashString(server_id) %
                  static_cast<uint64_t>(shards_.size())];
}

const ServingEngine::Shard& ServingEngine::ShardOf(
    const std::string& server_id) const {
  return *shards_[Rng::HashString(server_id) %
                  static_cast<uint64_t>(shards_.size())];
}

Status ServingEngine::Bootstrap(const std::vector<ServerTelemetry>& fleet) {
  for (const auto& st : fleet) {
    if (st.server_id.empty()) {
      return Status::Invalid("bootstrap telemetry has an empty server id");
    }
    Shard& shard = ShardOf(st.server_id);
    std::lock_guard<std::mutex> lock(shard.mu);
    ServerState& state = shard.servers[st.server_id];
    state.tail = st.load;
    if (state.tail.end() - state.tail.start() > options_.tail_cap_minutes) {
      state.tail = state.tail.Slice(
          state.tail.end() - options_.tail_cap_minutes, state.tail.end());
    }
    state.dirty = true;
  }
  dirty_marks_->Increment(static_cast<int64_t>(fleet.size()));
  servers_gauge_->Set(static_cast<double>(server_count()));
  return Status::OK();
}

int64_t ServingEngine::server_count() const {
  int64_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += static_cast<int64_t>(shard->servers.size());
  }
  return n;
}

Result<Json> ServingEngine::HandlePredict(const Json& request) {
  SEAGULL_ASSIGN_OR_RETURN(std::string server_id,
                           request.GetString("server_id"));
  if (request.Contains("recent")) {
    // Stateless path: the ForecastService wire contract — the request
    // carries its own telemetry and the endpoint predicts from it.
    SEAGULL_ASSIGN_OR_RETURN(ForecastRequest req,
                             ForecastRequest::FromJson(request));
    SEAGULL_ASSIGN_OR_RETURN(
        LoadSeries forecast,
        endpoint_.Predict(req.server_id, req.recent, req.start,
                          req.horizon_minutes));
    Json doc = Json::MakeObject();
    doc["ok"] = true;
    doc["model_version"] = endpoint_.version();
    doc["forecast"] = SeriesToJson(forecast);
    return doc;
  }

  // Stateful path: serve the cached forecast installed by the last tick.
  LoadSeries forecast;
  int64_t refit_tick = -1;
  {
    const Shard& shard = ShardOf(server_id);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.servers.find(server_id);
    if (it == shard.servers.end()) {
      return Status::NotFound("engine serves no server " + server_id);
    }
    if (!it->second.has_forecast) {
      return Status::FailedPrecondition(
          "no forecast for server " + server_id +
          (it->second.last_error.empty()
               ? " yet (awaiting first tick)"
               : ": last refit failed: " + it->second.last_error));
    }
    forecast = it->second.forecast;
    refit_tick = it->second.last_refit_tick;
  }
  if (request.Contains("start") || request.Contains("horizon_minutes")) {
    SEAGULL_ASSIGN_OR_RETURN(double start, request.GetNumber("start"));
    SEAGULL_ASSIGN_OR_RETURN(double horizon,
                             request.GetNumber("horizon_minutes"));
    if (static_cast<int64_t>(horizon) <= 0) {
      return Status::Invalid("horizon must be positive");
    }
    forecast = forecast.Slice(
        static_cast<MinuteStamp>(start),
        static_cast<MinuteStamp>(start) + static_cast<int64_t>(horizon));
    if (forecast.empty()) {
      return Status::FailedPrecondition(
          "requested range is outside the cached forecast for " + server_id);
    }
  }
  Json doc = Json::MakeObject();
  doc["ok"] = true;
  doc["model_version"] = endpoint_.version();
  doc["tick"] = refit_tick;
  doc["forecast"] = SeriesToJson(forecast);
  return doc;
}

Result<Json> ServingEngine::HandleLLWindow(const Json& request) {
  SEAGULL_ASSIGN_OR_RETURN(std::string server_id,
                           request.GetString("server_id"));
  const int64_t duration = static_cast<int64_t>(
      request.Contains("duration_minutes")
          ? request["duration_minutes"].AsDouble()
          : 60);
  if (duration <= 0) return Status::Invalid("duration must be positive");

  LoadSeries forecast;
  int64_t refit_tick = -1;
  {
    const Shard& shard = ShardOf(server_id);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.servers.find(server_id);
    if (it == shard.servers.end()) {
      return Status::NotFound("engine serves no server " + server_id);
    }
    if (!it->second.has_forecast) {
      return Status::FailedPrecondition("no forecast for server " +
                                        server_id + " yet");
    }
    forecast = it->second.forecast;
    refit_tick = it->second.last_refit_tick;
  }
  const int64_t day = static_cast<int64_t>(
      request.Contains("day") ? request["day"].AsDouble()
                              : DayIndex(forecast.start()));
  WindowResult window = LowestLoadWindow(forecast, day, duration);
  if (!window.found) {
    return Status::FailedPrecondition(
        "cached forecast covers no complete window on day " +
        std::to_string(day));
  }
  Json doc = Json::MakeObject();
  doc["ok"] = true;
  doc["model_version"] = endpoint_.version();
  doc["tick"] = refit_tick;
  Json w = Json::MakeObject();
  w["start"] = window.start;
  w["duration_minutes"] = window.duration_minutes;
  w["average_load"] = window.average_load;
  doc["window"] = std::move(w);
  return doc;
}

Result<Json> ServingEngine::HandleIngest(const Json& request) {
  SEAGULL_ASSIGN_OR_RETURN(std::string server_id,
                           request.GetString("server_id"));
  if (!request["series"].is_object()) {
    return Status::Invalid("ingest request has no series object");
  }
  SEAGULL_ASSIGN_OR_RETURN(LoadSeries increment,
                           SeriesFromJson(request["series"]));
  if (increment.empty()) {
    return Status::Invalid("ingest increment is empty");
  }
  const int64_t seq =
      request.Contains("seq")
          ? static_cast<int64_t>(request["seq"].AsDouble())
          : arrival_seq_.fetch_add(1, std::memory_order_relaxed);
  {
    Shard& shard = ShardOf(server_id);
    std::lock_guard<std::mutex> lock(shard.mu);
    ServerState& state = shard.servers[server_id];  // auto-registers
    // Enforce one grid per server here so tick-time merges cannot fail:
    // the increment must match the tail's interval, or — for a freshly
    // registered server — the interval of any already-pending increment.
    const int64_t grid = !state.tail.empty()
                             ? state.tail.interval_minutes()
                             : (!state.pending.empty()
                                    ? state.pending.front()
                                          .second.interval_minutes()
                                    : increment.interval_minutes());
    if (increment.interval_minutes() != grid) {
      return Status::Invalid(
          "increment interval does not match the server's telemetry grid");
    }
    state.pending.emplace_back(seq, std::move(increment));
  }
  pending_count_.fetch_add(1, std::memory_order_relaxed);
  queue_depth_->Set(
      static_cast<double>(pending_count_.load(std::memory_order_relaxed)));
  Json doc = Json::MakeObject();
  doc["ok"] = true;
  doc["server_id"] = server_id;
  doc["seq"] = seq;
  return doc;
}

std::string ServingEngine::Handle(const std::string& request_text) {
  auto parsed = Json::Parse(request_text);
  if (!parsed.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(parsed.status());
  }
  // Verb defaulting keeps the ForecastService wire form valid as-is.
  const std::string verb =
      parsed->Contains("verb") ? (*parsed)["verb"].AsString() : "predict";
  Result<Json> response = Status::Invalid("unknown verb " + verb);
  {
    ObsOp op("seagull.serving", verb == "predict" || verb == "ll_window" ||
                                        verb == "ingest"
                                    ? verb
                                    : "unknown");
    if (verb == "predict") response = HandlePredict(*parsed);
    if (verb == "ll_window") response = HandleLLWindow(*parsed);
    if (verb == "ingest") response = HandleIngest(*parsed);
    response = op.Done(std::move(response));
  }
  if (!response.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(response.status());
  }
  served_.fetch_add(1, std::memory_order_relaxed);
  return response->Dump();
}

TickResult ServingEngine::Tick() {
  const int64_t t0 = ObsClock::NowMicros();
  TickResult result;
  result.tick = tick_.load(std::memory_order_acquire) + 1;

  // Phase 1 — drain pending ingests into the tails, in seq order, and
  // collect the dirty set. Per-shard locking; the sorted merge makes the
  // outcome independent of arrival interleaving.
  struct DirtyServer {
    std::string id;
    ServerState* state;  ///< stable: map nodes never move
    Shard* shard;
  };
  std::vector<DirtyServer> dirty;
  int64_t total_servers = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total_servers += static_cast<int64_t>(shard->servers.size());
    for (auto& [id, state] : shard->servers) {
      if (!state.pending.empty()) {
        std::sort(state.pending.begin(), state.pending.end(),
                  [](const auto& a, const auto& b) {
                    return a.first < b.first;
                  });
        for (auto& [seq, increment] : state.pending) {
          (void)seq;
          state.tail.MergeFrom(increment).Abort();
        }
        result.ingests_applied +=
            static_cast<int64_t>(state.pending.size());
        pending_count_.fetch_sub(
            static_cast<int64_t>(state.pending.size()),
            std::memory_order_relaxed);
        state.pending.clear();
        if (state.tail.end() - state.tail.start() >
            options_.tail_cap_minutes) {
          state.tail = state.tail.Slice(
              state.tail.end() - options_.tail_cap_minutes,
              state.tail.end());
        }
        if (!state.dirty) {
          state.dirty = true;
          dirty_marks_->Increment();
        }
      }
      if (state.dirty) {
        dirty.push_back({id, &state, shard.get()});
      } else {
        ++result.clean_skips;
      }
    }
  }
  std::sort(dirty.begin(), dirty.end(),
            [](const DirtyServer& a, const DirtyServer& b) {
              return a.id < b.id;
            });

  // Phase 2 — re-forecast the dirty set. The tail is stable for the rest
  // of the tick (ingests only enqueue), so the forecast computes without
  // the shard lock; only the install swaps under it, keeping concurrent
  // readers on a consistent (old or new, never torn) forecast.
  auto refit = [&](int64_t i) {
    DirtyServer& d = dirty[static_cast<size_t>(i)];
    Status injected = FaultRegistry::Global().Inject("serving.refit", d.id);
    Result<LoadSeries> forecast =
        injected.ok()
            ? endpoint_.Predict(d.id, d.state->tail, d.state->tail.end(),
                                options_.horizon_minutes)
            : Result<LoadSeries>(injected);
    std::lock_guard<std::mutex> lock(d.shard->mu);
    if (forecast.ok()) {
      d.state->forecast = std::move(forecast).ValueUnsafe();
      d.state->has_forecast = true;
      d.state->last_refit_tick = result.tick;
      d.state->last_error.clear();
    } else {
      d.state->last_error = forecast.status().ToString();
    }
    d.state->dirty = false;
  };
  const int64_t n = static_cast<int64_t>(dirty.size());
  if (options_.pool != nullptr && n > 1) {
    ParallelFor(options_.pool, n, refit);
  } else {
    SequentialFor(n, refit);
  }
  result.refits = n;
  for (const auto& d : dirty) {
    if (!d.state->last_error.empty()) ++result.refit_failures;
  }

  refits_->Increment(result.refits);
  refit_failures_->Increment(result.refit_failures);
  ticks_->Increment();
  queue_depth_->Set(
      static_cast<double>(pending_count_.load(std::memory_order_relaxed)));
  servers_gauge_->Set(static_cast<double>(total_servers));
  tick_micros_->Observe(static_cast<double>(ObsClock::NowMicros() - t0));
  tick_.store(result.tick, std::memory_order_release);
  return result;
}

std::string ServingEngine::SnapshotText() const {
  Json doc = Json::MakeObject();
  doc["tick"] = tick_.load(std::memory_order_acquire);
  doc["family"] = endpoint_.family();
  doc["model_version"] = endpoint_.version();
  Json servers = Json::MakeObject();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [id, state] : shard->servers) {
      Json s = Json::MakeObject();
      s["tail"] = SeriesToJson(state.tail);
      s["forecast"] =
          state.has_forecast ? SeriesToJson(state.forecast) : Json();
      s["dirty"] = state.dirty;
      s["pending"] = static_cast<int64_t>(state.pending.size());
      s["last_refit_tick"] = state.last_refit_tick;
      s["last_error"] = state.last_error;
      servers[id] = std::move(s);
    }
  }
  doc["servers"] = std::move(servers);
  return doc.Dump();
}

}  // namespace seagull
