/// \file additive.h
/// \brief Additive trend + seasonality forecaster — the Prophet analog.
///
/// Prophet (§5.1) fits "an additive model where non-linear trends are fit
/// with yearly, weekly, and daily seasonality". At telemetry horizons the
/// relevant parts are a piecewise-linear trend with changepoints plus
/// daily and weekly Fourier seasonalities, estimated by iterative MAP
/// optimization — reproduced here with full-batch gradient descent and
/// Monte-Carlo uncertainty sampling at inference (the two properties that
/// make the original slow, §5.3.3).

#pragma once

#include <vector>

#include "common/random.h"
#include "forecast/model.h"

namespace seagull {

class BatchTrainer;
class Matrix;

/// \brief Model structure and optimizer parameters.
struct AdditiveOptions {
  /// Fourier order of the daily / weekly seasonal blocks.
  int64_t daily_order = 8;
  int64_t weekly_order = 4;
  /// Known special days (day indices since epoch). Prophet's "holiday
  /// effects": each listed day gets a shared additive offset estimated
  /// from the training data and applied when forecasting another listed
  /// day (e.g. month-end batch runs, fiscal closes).
  std::vector<int64_t> holidays;
  /// Evenly spaced trend changepoints over the training range.
  int64_t changepoints = 8;
  /// L2 penalty on changepoint slopes (sparsity prior stand-in).
  double changepoint_penalty = 10.0;
  /// Full-batch gradient-descent iterations (the MAP optimization).
  int64_t iterations = 600;
  double learning_rate = 0.05;
  /// Posterior-style trend simulations per forecast; the dominant
  /// inference cost, as in the original.
  int64_t uncertainty_samples = 100;
  uint64_t seed = 11;
};

/// \brief Prophet-style additive forecaster.
class AdditiveForecast final : public ForecastModel {
 public:
  explicit AdditiveForecast(AdditiveOptions options = {})
      : options_(options) {}

  std::string name() const override { return "additive"; }
  Status Fit(const LoadSeries& train) override;
  Result<LoadSeries> Forecast(const LoadSeries& recent, MinuteStamp start,
                              int64_t horizon_minutes) const override;
  Result<Json> Serialize() const override;
  Status Deserialize(const Json& doc) override;

 private:
  /// BatchTrainer builds one design matrix (and Gram) per shape group
  /// and runs the per-server optimizer loop below against it.
  friend class BatchTrainer;

  /// Number of model coefficients.
  int64_t NumFeatures() const;
  /// Anchors the feature time scale to `filled`'s range. Must run
  /// before FeaturesAt / FitWithDesign.
  void SetTrainRange(const LoadSeries& filled);
  /// The optimizer core: fits `coef_` against a design matrix whose
  /// row i is FeaturesAt(filled.TimeAt(i)). With `gram == nullptr`
  /// runs the row-streaming scalar reference loop; with the AᵀA Gram
  /// supplied, iterates in Gram space — O(p²) per step instead of
  /// O(n·p) — which is also what lets batched training share one
  /// design+Gram across every server in a shape group.
  Status FitWithDesign(const LoadSeries& filled, const Matrix& design,
                       const Matrix* gram);
  /// Writes the NumFeatures() feature values at absolute minute `t`
  /// into `phi` (raw pointer so callers can hand out design-matrix rows
  /// or scratch-arena storage directly).
  void FeaturesAt(MinuteStamp t, double* phi) const;
  /// True when `day_index` is a configured holiday.
  bool IsHoliday(int64_t day_index) const;

  AdditiveOptions options_;
  bool fitted_ = false;
  int64_t interval_ = kServerIntervalMinutes;
  MinuteStamp train_start_ = 0;
  MinuteStamp train_end_ = 0;
  std::vector<double> coef_;
  double residual_sigma_ = 0.0;
};

}  // namespace seagull
