/// \file batch.h
/// \brief Cross-server batched model training.
///
/// The training module fans one independent `Fit()` per server across
/// the thread pool; at fleet scale most of those fits repeat work,
/// because servers in one region share a telemetry grid — same slice
/// start/end, same interval — and the expensive per-fit structures
/// (the additive model's design matrix and its AᵀA Gram) depend only on
/// that grid, not on the load values. `BatchTrainer` groups same-shape
/// series, builds the shared structures once per group through the
/// cache-blocked kernels, and runs the per-server optimizer cores
/// against them, so per-server fit cost amortizes across the fleet.
///
/// Equivalence contract (tests/forecast_batch_equivalence_test.cc):
/// every item's result — coefficients, serialized document, error
/// status — is byte-identical to `ModelFactory::Create(name)->Fit()` on
/// the same series, in either kernel mode, at any pool width. This
/// holds by construction: the batched path executes the exact same
/// operation sequence as a per-server fit, merely sourcing the shared
/// inputs (which are bit-identical doubles either way) from the group.
///
/// Determinism: groups are formed in input order and processed
/// sequentially; items fan out via `ParallelFor`, each writing only its
/// own result slot. Shared group structures are built once on the
/// calling thread and read-only during the fan-out — they live on the
/// heap (owned by the group loop), NOT in `KernelScratch`, because pool
/// workers each see their own thread-local arena.

#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "forecast/model.h"
#include "timeseries/series.h"

namespace seagull {

class ThreadPool;

/// \brief One server's training slice.
struct BatchTrainItem {
  const LoadSeries* train = nullptr;
};

/// \brief Outcome for one item, in input order.
struct BatchTrainResult {
  Status status;       ///< fit/serialize outcome (default OK)
  Json doc;            ///< serialized model when status is OK
  double fit_micros = 0.0;  ///< this item's own fit time (shared group
                            ///< construction excluded — it is amortized)
};

/// \brief Aggregate batching counters for pipeline stats.
struct BatchTrainStats {
  int64_t groups = 0;       ///< shape groups formed
  int64_t shared_fits = 0;  ///< fits that reused a group-shared structure
};

/// \brief Groups same-shape series and trains them in shared-kernel
/// batches.
class BatchTrainer {
 public:
  /// Fits `model_name` on every item. Results are indexed exactly like
  /// `items`; a failed fit yields its per-server error status in place.
  /// `pool == nullptr` runs sequentially (same results either way).
  /// Families without a batched core (SSA, ARIMA, heuristics, custom
  /// registrations) fall back to plain per-item `Fit` under the same
  /// fan-out, so callers need not special-case by family.
  static Result<std::vector<BatchTrainResult>> Fit(
      const std::string& model_name, const std::vector<BatchTrainItem>& items,
      ThreadPool* pool, BatchTrainStats* stats = nullptr);

 private:
  // Group fitters (batch.cc); members so the friend grants of the
  // model classes cover them.
  static void FitAdditiveGroup(const std::string& name,
                               const std::vector<BatchTrainItem>& items,
                               const std::vector<int64_t>& members,
                               ThreadPool* pool,
                               std::vector<BatchTrainResult>* results);
  static void FitFeedForwardGroup(const std::string& name,
                                  const std::vector<BatchTrainItem>& items,
                                  const std::vector<int64_t>& members,
                                  ThreadPool* pool,
                                  std::vector<BatchTrainResult>* results);
};

}  // namespace seagull
