#include "forecast/feedforward.h"

#include <algorithm>
#include <cmath>

#include "forecast/scratch.h"
#include "timeseries/resample.h"

namespace seagull {

namespace {

/// Average-pools `raw` (`raw_n` values, one per raw tick) into `bins`
/// equal bins written to `out`.
void PoolInto(const double* raw, int64_t raw_n, int64_t bins, double* out) {
  const int64_t per = raw_n / bins;
  for (int64_t b = 0; b < bins; ++b) {
    double sum = 0.0;
    for (int64_t k = 0; k < per; ++k) {
      sum += raw[b * per + k];
    }
    out[b] = sum / static_cast<double>(per);
  }
}

/// Vector-returning wrapper for the inference path.
std::vector<double> Pool(const std::vector<double>& raw, int64_t bins) {
  std::vector<double> out(static_cast<size_t>(bins), 0.0);
  PoolInto(raw.data(), static_cast<int64_t>(raw.size()), bins, out.data());
  return out;
}

}  // namespace

int64_t FeedForwardForecast::NumParams() const {
  const int64_t in_dim = options_.pooled_per_day;
  const int64_t out_dim = options_.pooled_per_day;
  const int64_t hidden = options_.hidden;
  return hidden * in_dim + hidden + out_dim * hidden + out_dim;
}

void FeedForwardForecast::AdoptParams(const double* params) {
  const int64_t in_dim = options_.pooled_per_day;
  const int64_t out_dim = options_.pooled_per_day;
  const int64_t hidden = options_.hidden;
  const double* w1 = params;
  const double* b1 = w1 + hidden * in_dim;
  const double* w2 = b1 + hidden;
  const double* b2 = w2 + out_dim * hidden;
  w1_.assign(w1, b1);
  b1_.assign(b1, w2);
  w2_.assign(w2, b2);
  b2_.assign(b2, b2 + out_dim);
  fitted_ = true;
}

Status FeedForwardForecast::Fit(const LoadSeries& train) {
  const LoadSeries filled = InterpolateMissing(train);
  KernelScratch& scratch = KernelScratch::Local();
  const size_t np = static_cast<size_t>(NumParams());
  std::vector<double>& params = scratch.Vec(kscratch::kFfParams, np);
  std::vector<double>& m1 = scratch.VecZero(kscratch::kFfAdamM, np);
  std::vector<double>& v1 = scratch.VecZero(kscratch::kFfAdamV, np);
  SEAGULL_RETURN_NOT_OK(
      FitCore(filled, params.data(), m1.data(), v1.data()));
  AdoptParams(params.data());
  return Status::OK();
}

Status FeedForwardForecast::FitCore(const LoadSeries& filled, double* params,
                                    double* mom, double* vel) {
  interval_ = filled.interval_minutes();
  const int64_t ticks_day = filled.ticks_per_day();
  const int64_t in_dim = options_.pooled_per_day;
  const int64_t out_dim = options_.pooled_per_day;
  const int64_t hidden = options_.hidden;
  if (ticks_day % in_dim != 0) {
    return Status::Invalid("pooled_per_day must divide samples per day");
  }
  if (filled.size() < 2 * ticks_day + 1) {
    return Status::FailedPrecondition(
        "feed-forward training needs at least two days of history");
  }

  // Build sliding (context day -> next day) training pairs, pooled
  // straight into contiguous scratch matrices: one row per pair, so the
  // epoch loop below streams them with raw row pointers and the whole
  // construction reuses the thread's retained capacity across fits.
  KernelScratch& scratch = KernelScratch::Local();
  int64_t m = 0;
  for (int64_t off = 0; off + 2 * ticks_day <= filled.size();
       off += options_.stride) {
    ++m;
  }
  if (m == 0) return Status::FailedPrecondition("no training windows");
  Matrix& inputs = scratch.Mat(kscratch::kMatFfInputs, m, in_dim);
  Matrix& targets = scratch.Mat(kscratch::kMatFfTargets, m, out_dim);
  {
    std::vector<double>& raw =
        scratch.Vec(kscratch::kFfActivations, static_cast<size_t>(2 * ticks_day));
    double* ctx = raw.data();
    double* nxt = raw.data() + ticks_day;
    int64_t row = 0;
    for (int64_t off = 0; off + 2 * ticks_day <= filled.size();
         off += options_.stride, ++row) {
      for (int64_t i = 0; i < ticks_day; ++i) {
        ctx[i] = filled.ValueAt(off + i) / scale_;
        nxt[i] = filled.ValueAt(off + ticks_day + i) / scale_;
      }
      PoolInto(ctx, ticks_day, in_dim, inputs.Row(row));
      PoolInto(nxt, ticks_day, out_dim, targets.Row(row));
    }
  }

  // He-initialize the caller's [w1|b1|w2|b2] block. Same Rng and draw
  // order as the original per-member init, so results are unchanged.
  double* w1 = params;
  double* b1 = w1 + hidden * in_dim;
  double* w2 = b1 + hidden;
  double* b2 = w2 + out_dim * hidden;
  Rng rng(options_.seed);
  auto init = [&rng](double* w, int64_t n, double fan_in) {
    double s = std::sqrt(2.0 / fan_in);
    for (int64_t i = 0; i < n; ++i) w[i] = rng.Gaussian(0.0, s);
  };
  init(w1, hidden * in_dim, static_cast<double>(in_dim));
  std::fill(b1, b1 + hidden, 0.0);
  init(w2, out_dim * hidden, static_cast<double>(hidden));
  std::fill(b2, b2 + out_dim, 0.0);

  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  const double lr = options_.learning_rate;
  const double inv_m = 1.0 / static_cast<double>(m);
  // Adam step over the concatenated parameter block; the update
  // arithmetic is shared verbatim by both epoch branches below.
  int64_t step = 0;
  auto adam_step = [&](double inv_n, const double* g_w1, const double* g_b1,
                       const double* g_w2, const double* g_b2) {
    ++step;
    const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(step));
    const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(step));
    size_t k = 0;
    auto update = [&](double* w, const double* g, int64_t count) {
      for (int64_t i = 0; i < count; ++i, ++k) {
        double grad = g[i] * inv_n;
        mom[k] = beta1 * mom[k] + (1 - beta1) * grad;
        vel[k] = beta2 * vel[k] + (1 - beta2) * grad * grad;
        w[i] -= lr * (mom[k] / bc1) / (std::sqrt(vel[k] / bc2) + eps);
      }
    };
    update(w1, g_w1, hidden * in_dim);
    update(b1, g_b1, hidden);
    update(w2, g_w2, out_dim * hidden);
    update(b2, g_b2, out_dim);
  };

  if (GetKernelMode() == KernelMode::kFast) {
    // Mini-batch epochs through the batched matmul kernels: each batch
    // moves through the layers as one matrix product —
    //   Hpre = Xb·w1ᵀ (+b1), H = relu(Hpre), dY = H·w2ᵀ (+b2) − Tb,
    //   gW2 = dYᵀ·H, dH = dY·w2 masked by Hpre>0, gW1 = dHᵀ·Xb,
    // with biases as column sums. The kernels run at the host's
    // throughput limit either way, so per-pass FLOPs match the
    // reference; the fast path's win is optimization *rate*: fixed
    // contiguous kBatch-sized Adam steps reach the full-batch loss
    // basin in a fraction of the epochs, and the plateau exit (like
    // the ARIMA CSS plateau) stops the loop there. Batch boundaries,
    // order, and the exit epoch depend only on the options, so the
    // trajectory is deterministic.
    constexpr int64_t kBatch = 32;
    const int64_t n_batches = (m + kBatch - 1) / kBatch;
    // Per-batch input/target copies are built once per fit (contiguous
    // row ranges of the window set, in order); the few small matrices
    // are the fit's only heap use, mirroring the ARIMA lattice.
    std::vector<Matrix> xb(static_cast<size_t>(n_batches));
    std::vector<Matrix> tb(static_cast<size_t>(n_batches));
    for (int64_t bi = 0; bi < n_batches; ++bi) {
      const int64_t lo = bi * kBatch;
      const int64_t bs = std::min(kBatch, m - lo);
      Matrix& x = xb[static_cast<size_t>(bi)];
      Matrix& t = tb[static_cast<size_t>(bi)];
      x.Resize(bs, in_dim);
      t.Resize(bs, out_dim);
      for (int64_t r = 0; r < bs; ++r) {
        std::copy(inputs.Row(lo + r), inputs.Row(lo + r) + in_dim,
                  x.Row(r));
        std::copy(targets.Row(lo + r), targets.Row(lo + r) + out_dim,
                  t.Row(r));
      }
    }
    Matrix& hpre = scratch.Mat(kscratch::kMatFfHidden, 0, 0);
    Matrix& hrelu = scratch.Mat(kscratch::kMatFfRelu, 0, 0);
    Matrix& dy = scratch.Mat(kscratch::kMatFfOut, 0, 0);
    Matrix& dhm = scratch.Mat(kscratch::kMatFfDh, 0, 0);
    Matrix& g_w1m = scratch.Mat(kscratch::kMatFfGradW1, 0, 0);
    Matrix& g_w2m = scratch.Mat(kscratch::kMatFfGradW2, 0, 0);
    std::vector<double>& g_b1v =
        scratch.Vec(kscratch::kFfGradB1, static_cast<size_t>(hidden));
    std::vector<double>& g_b2v =
        scratch.Vec(kscratch::kFfGradB2, static_cast<size_t>(out_dim));
    // Convergence exit (fast mode only): once per-epoch improvement
    // falls below 0.03% of the *initial* loss — the problem's own
    // scale — for several consecutive epochs, further epochs move the
    // forecast by less than the telemetry's noise floor. (Relative-to-
    // current-loss tests never fire here: mini-batch Adam keeps
    // shaving ~1% of an already-negligible loss per epoch.)
    double initial_loss = 0.0;
    double best_loss = 0.0;
    int plateau = 0;
    for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
      double loss = 0.0;
      for (int64_t bi = 0; bi < n_batches; ++bi) {
        const Matrix& x = xb[static_cast<size_t>(bi)];
        const Matrix& t = tb[static_cast<size_t>(bi)];
        const int64_t bs = x.rows();
        MatMulNT(x, w1, hidden, &hpre);
        hrelu.Resize(bs, hidden);
        for (int64_t s = 0; s < bs; ++s) {
          double* pr = hpre.Row(s);
          double* hr = hrelu.Row(s);
          for (int64_t j = 0; j < hidden; ++j) {
            const double a = pr[j] + b1[j];
            pr[j] = a;
            hr[j] = a > 0 ? a : 0.0;
          }
        }
        MatMulNT(hrelu, w2, out_dim, &dy);
        for (int64_t s = 0; s < bs; ++s) {
          double* dr = dy.Row(s);
          const double* tr = t.Row(s);
          for (int64_t o = 0; o < out_dim; ++o) {
            const double d = dr[o] + b2[o] - tr[o];
            dr[o] = d;
            loss += d * d;
          }
        }
        // Output-layer gradients.
        std::fill(g_b2v.begin(), g_b2v.end(), 0.0);
        for (int64_t s = 0; s < bs; ++s) {
          const double* dr = dy.Row(s);
          for (int64_t o = 0; o < out_dim; ++o) {
            g_b2v[static_cast<size_t>(o)] += dr[o];
          }
        }
        MatMulTN(dy, hrelu, &g_w2m);
        // Hidden deltas, masked by the pre-activation sign.
        MatMulNN(dy, w2, hidden, &dhm);
        std::fill(g_b1v.begin(), g_b1v.end(), 0.0);
        for (int64_t s = 0; s < bs; ++s) {
          const double* pr = hpre.Row(s);
          double* dr = dhm.Row(s);
          for (int64_t j = 0; j < hidden; ++j) {
            if (pr[j] <= 0) {
              dr[j] = 0.0;
            } else {
              g_b1v[static_cast<size_t>(j)] += dr[j];
            }
          }
        }
        MatMulTN(dhm, x, &g_w1m);
        adam_step(1.0 / static_cast<double>(bs), g_w1m.Row(0),
                  g_b1v.data(), g_w2m.Row(0), g_b2v.data());
      }
      train_loss_ = loss / static_cast<double>(m * out_dim);
      if (epoch == 0) {
        initial_loss = train_loss_;
        best_loss = train_loss_;
      } else if (best_loss - train_loss_ > 3e-4 * initial_loss) {
        best_loss = train_loss_;
        plateau = 0;
      } else {
        best_loss = std::min(best_loss, train_loss_);
        if (++plateau >= 6) break;
      }
    }
  } else {
    // Scalar reference: per-sample forward/backward passes. Gradient
    // accumulators and the activation workspace live in the scratch
    // arena; the activation slot re-slices the buffer the pooling pass
    // above used (its contents are dead now).
    std::vector<double>& g_w1 = scratch.Vec(
        kscratch::kFfGradW1, static_cast<size_t>(hidden * in_dim));
    std::vector<double>& g_b1 =
        scratch.Vec(kscratch::kFfGradB1, static_cast<size_t>(hidden));
    std::vector<double>& g_w2 = scratch.Vec(
        kscratch::kFfGradW2, static_cast<size_t>(out_dim * hidden));
    std::vector<double>& g_b2 =
        scratch.Vec(kscratch::kFfGradB2, static_cast<size_t>(out_dim));
    std::vector<double>& act = scratch.Vec(
        kscratch::kFfActivations,
        static_cast<size_t>(3 * hidden + 2 * out_dim));
    double* h = act.data();
    double* pre = h + hidden;
    double* dh = pre + hidden;
    double* yhat = dh + hidden;
    double* dyv = yhat + out_dim;

    for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
      std::fill(g_w1.begin(), g_w1.end(), 0.0);
      std::fill(g_b1.begin(), g_b1.end(), 0.0);
      std::fill(g_w2.begin(), g_w2.end(), 0.0);
      std::fill(g_b2.begin(), g_b2.end(), 0.0);
      double loss = 0.0;
      for (int64_t s = 0; s < m; ++s) {
        const double* x = inputs.Row(s);
        const double* y = targets.Row(s);
        // Forward.
        for (int64_t j = 0; j < hidden; ++j) {
          double a = b1[j];
          const double* w1r = w1 + j * in_dim;
          for (int64_t i = 0; i < in_dim; ++i) {
            a += w1r[i] * x[i];
          }
          pre[j] = a;
          h[j] = a > 0 ? a : 0.0;
        }
        for (int64_t o = 0; o < out_dim; ++o) {
          double a = b2[o];
          const double* w2r = w2 + o * hidden;
          for (int64_t j = 0; j < hidden; ++j) {
            a += w2r[j] * h[j];
          }
          yhat[o] = a;
          double d = a - y[o];
          dyv[o] = d;
          loss += d * d;
        }
        // Backward.
        std::fill(dh, dh + hidden, 0.0);
        for (int64_t o = 0; o < out_dim; ++o) {
          double d = dyv[o];
          g_b2[static_cast<size_t>(o)] += d;
          double* g_w2r = g_w2.data() + o * hidden;
          const double* w2r = w2 + o * hidden;
          for (int64_t j = 0; j < hidden; ++j) {
            g_w2r[j] += d * h[j];
            dh[j] += d * w2r[j];
          }
        }
        for (int64_t j = 0; j < hidden; ++j) {
          if (pre[j] <= 0) continue;
          double d = dh[j];
          g_b1[static_cast<size_t>(j)] += d;
          double* g_w1r = g_w1.data() + j * in_dim;
          for (int64_t i = 0; i < in_dim; ++i) {
            g_w1r[i] += d * x[i];
          }
        }
      }
      train_loss_ = loss / static_cast<double>(m * out_dim);
      adam_step(inv_m, g_w1.data(), g_b1.data(), g_w2.data(), g_b2.data());
    }
  }
  return Status::OK();
}

std::vector<double> FeedForwardForecast::Apply(
    const std::vector<double>& input) const {
  const int64_t in_dim = options_.pooled_per_day;
  const int64_t out_dim = options_.pooled_per_day;
  const int64_t hidden = options_.hidden;
  std::vector<double> h(static_cast<size_t>(hidden));
  for (int64_t j = 0; j < hidden; ++j) {
    double a = b1_[static_cast<size_t>(j)];
    for (int64_t i = 0; i < in_dim; ++i) {
      a += w1_[static_cast<size_t>(j * in_dim + i)] *
           input[static_cast<size_t>(i)];
    }
    h[static_cast<size_t>(j)] = a > 0 ? a : 0.0;
  }
  std::vector<double> y(static_cast<size_t>(out_dim));
  for (int64_t o = 0; o < out_dim; ++o) {
    double a = b2_[static_cast<size_t>(o)];
    for (int64_t j = 0; j < hidden; ++j) {
      a += w2_[static_cast<size_t>(o * hidden + j)] *
           h[static_cast<size_t>(j)];
    }
    y[static_cast<size_t>(o)] = a;
  }
  return y;
}

Result<LoadSeries> FeedForwardForecast::Forecast(
    const LoadSeries& recent, MinuteStamp start,
    int64_t horizon_minutes) const {
  if (!fitted_) return Status::FailedPrecondition("network is not fitted");
  const int64_t interval = interval_;
  if (start % interval != 0 || horizon_minutes % interval != 0) {
    return Status::Invalid("forecast range must be grid-aligned");
  }
  const int64_t ticks_day = TicksPerDay(interval);
  LoadSeries ctx_series = InterpolateMissing(
      recent.Slice(start - kMinutesPerDay, start));
  if (ctx_series.size() < ticks_day) {
    return Status::FailedPrecondition("need one day of context");
  }
  std::vector<double> ctx(static_cast<size_t>(ticks_day));
  for (int64_t i = 0; i < ticks_day; ++i) {
    double v = ctx_series.ValueAtTime(start - (ticks_day - i) * interval);
    ctx[static_cast<size_t>(i)] = IsMissing(v) ? 0.0 : v / scale_;
  }

  const int64_t steps = horizon_minutes / interval;
  std::vector<double> out;
  out.reserve(static_cast<size_t>(steps));
  // Roll forward one day at a time, feeding predictions back for
  // multi-day horizons.
  while (static_cast<int64_t>(out.size()) < steps) {
    std::vector<double> pooled = Pool(ctx, options_.pooled_per_day);
    std::vector<double> pred = Apply(pooled);
    // Upsample pooled predictions back to the raw grid (step function —
    // the LL-window metrics average over windows anyway).
    const int64_t per = ticks_day / options_.pooled_per_day;
    std::vector<double> day(static_cast<size_t>(ticks_day));
    for (int64_t i = 0; i < ticks_day; ++i) {
      double v = pred[static_cast<size_t>(i / per)] * scale_;
      day[static_cast<size_t>(i)] = std::clamp(v, 0.0, 200.0);
    }
    for (int64_t i = 0;
         i < ticks_day && static_cast<int64_t>(out.size()) < steps; ++i) {
      out.push_back(day[static_cast<size_t>(i)]);
    }
    for (int64_t i = 0; i < ticks_day; ++i) {
      ctx[static_cast<size_t>(i)] = day[static_cast<size_t>(i)] / scale_;
    }
  }
  return LoadSeries::Make(start, interval, std::move(out));
}

Result<Json> FeedForwardForecast::Serialize() const {
  if (!fitted_) return Status::FailedPrecondition("serialize before fit");
  Json doc = Json::MakeObject();
  doc["model"] = name();
  doc["interval"] = interval_;
  doc["pooled"] = options_.pooled_per_day;
  doc["hidden"] = options_.hidden;
  doc["scale"] = scale_;
  auto dump = [](const std::vector<double>& w) {
    Json arr = Json::MakeArray();
    for (double v : w) arr.Append(v);
    return arr;
  };
  doc["w1"] = dump(w1_);
  doc["b1"] = dump(b1_);
  doc["w2"] = dump(w2_);
  doc["b2"] = dump(b2_);
  return doc;
}

Status FeedForwardForecast::Deserialize(const Json& doc) {
  SEAGULL_ASSIGN_OR_RETURN(double interval, doc.GetNumber("interval"));
  SEAGULL_ASSIGN_OR_RETURN(double pooled, doc.GetNumber("pooled"));
  SEAGULL_ASSIGN_OR_RETURN(double hidden, doc.GetNumber("hidden"));
  SEAGULL_ASSIGN_OR_RETURN(scale_, doc.GetNumber("scale"));
  interval_ = static_cast<int64_t>(interval);
  options_.pooled_per_day = static_cast<int64_t>(pooled);
  options_.hidden = static_cast<int64_t>(hidden);
  auto load = [&doc](const char* key, std::vector<double>* w) -> Status {
    const Json& arr = doc[key];
    if (!arr.is_array()) return Status::Invalid("missing weights");
    w->clear();
    for (const auto& v : arr.AsArray()) {
      if (!v.is_number()) return Status::Invalid("non-numeric weight");
      w->push_back(v.AsDouble());
    }
    return Status::OK();
  };
  SEAGULL_RETURN_NOT_OK(load("w1", &w1_));
  SEAGULL_RETURN_NOT_OK(load("b1", &b1_));
  SEAGULL_RETURN_NOT_OK(load("w2", &w2_));
  SEAGULL_RETURN_NOT_OK(load("b2", &b2_));
  fitted_ = true;
  return Status::OK();
}

}  // namespace seagull
