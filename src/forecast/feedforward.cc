#include "forecast/feedforward.h"

#include <algorithm>
#include <cmath>

#include "timeseries/resample.h"

namespace seagull {

namespace {

/// Average-pools `raw` (one value per raw tick) into `bins` equal bins.
std::vector<double> Pool(const std::vector<double>& raw, int64_t bins) {
  std::vector<double> out(static_cast<size_t>(bins), 0.0);
  const int64_t per = static_cast<int64_t>(raw.size()) / bins;
  for (int64_t b = 0; b < bins; ++b) {
    double sum = 0.0;
    for (int64_t k = 0; k < per; ++k) {
      sum += raw[static_cast<size_t>(b * per + k)];
    }
    out[static_cast<size_t>(b)] = sum / static_cast<double>(per);
  }
  return out;
}

}  // namespace

Status FeedForwardForecast::Fit(const LoadSeries& train) {
  const LoadSeries filled = InterpolateMissing(train);
  interval_ = filled.interval_minutes();
  const int64_t ticks_day = filled.ticks_per_day();
  const int64_t in_dim = options_.pooled_per_day;
  const int64_t out_dim = options_.pooled_per_day;
  const int64_t hidden = options_.hidden;
  if (ticks_day % in_dim != 0) {
    return Status::Invalid("pooled_per_day must divide samples per day");
  }
  if (filled.size() < 2 * ticks_day + 1) {
    return Status::FailedPrecondition(
        "feed-forward training needs at least two days of history");
  }

  // Build sliding (context day -> next day) training pairs.
  std::vector<std::vector<double>> xs, ys;
  for (int64_t off = 0; off + 2 * ticks_day <= filled.size();
       off += options_.stride) {
    std::vector<double> ctx(static_cast<size_t>(ticks_day));
    std::vector<double> nxt(static_cast<size_t>(ticks_day));
    for (int64_t i = 0; i < ticks_day; ++i) {
      ctx[static_cast<size_t>(i)] = filled.ValueAt(off + i) / scale_;
      nxt[static_cast<size_t>(i)] =
          filled.ValueAt(off + ticks_day + i) / scale_;
    }
    xs.push_back(Pool(ctx, in_dim));
    ys.push_back(Pool(nxt, out_dim));
  }
  const int64_t m = static_cast<int64_t>(xs.size());
  if (m == 0) return Status::FailedPrecondition("no training windows");

  // He-initialized parameters.
  Rng rng(options_.seed);
  auto init = [&rng](std::vector<double>* w, int64_t n, double fan_in) {
    w->resize(static_cast<size_t>(n));
    double s = std::sqrt(2.0 / fan_in);
    for (auto& v : *w) v = rng.Gaussian(0.0, s);
  };
  init(&w1_, hidden * in_dim, static_cast<double>(in_dim));
  b1_.assign(static_cast<size_t>(hidden), 0.0);
  init(&w2_, out_dim * hidden, static_cast<double>(hidden));
  b2_.assign(static_cast<size_t>(out_dim), 0.0);

  // Adam state.
  const size_t np = w1_.size() + b1_.size() + w2_.size() + b2_.size();
  std::vector<double> m1(np, 0.0), v1(np, 0.0);
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  const double lr = options_.learning_rate;

  std::vector<double> g_w1(w1_.size()), g_b1(b1_.size()), g_w2(w2_.size()),
      g_b2(b2_.size());
  std::vector<double> h(static_cast<size_t>(hidden));
  std::vector<double> pre(static_cast<size_t>(hidden));
  std::vector<double> yhat(static_cast<size_t>(out_dim));
  std::vector<double> dy(static_cast<size_t>(out_dim));
  std::vector<double> dh(static_cast<size_t>(hidden));

  int64_t step = 0;
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    std::fill(g_w1.begin(), g_w1.end(), 0.0);
    std::fill(g_b1.begin(), g_b1.end(), 0.0);
    std::fill(g_w2.begin(), g_w2.end(), 0.0);
    std::fill(g_b2.begin(), g_b2.end(), 0.0);
    double loss = 0.0;
    for (int64_t s = 0; s < m; ++s) {
      const auto& x = xs[static_cast<size_t>(s)];
      const auto& y = ys[static_cast<size_t>(s)];
      // Forward.
      for (int64_t j = 0; j < hidden; ++j) {
        double a = b1_[static_cast<size_t>(j)];
        for (int64_t i = 0; i < in_dim; ++i) {
          a += w1_[static_cast<size_t>(j * in_dim + i)] *
               x[static_cast<size_t>(i)];
        }
        pre[static_cast<size_t>(j)] = a;
        h[static_cast<size_t>(j)] = a > 0 ? a : 0.0;
      }
      for (int64_t o = 0; o < out_dim; ++o) {
        double a = b2_[static_cast<size_t>(o)];
        for (int64_t j = 0; j < hidden; ++j) {
          a += w2_[static_cast<size_t>(o * hidden + j)] *
               h[static_cast<size_t>(j)];
        }
        yhat[static_cast<size_t>(o)] = a;
        double d = a - y[static_cast<size_t>(o)];
        dy[static_cast<size_t>(o)] = d;
        loss += d * d;
      }
      // Backward.
      std::fill(dh.begin(), dh.end(), 0.0);
      for (int64_t o = 0; o < out_dim; ++o) {
        double d = dy[static_cast<size_t>(o)];
        g_b2[static_cast<size_t>(o)] += d;
        for (int64_t j = 0; j < hidden; ++j) {
          g_w2[static_cast<size_t>(o * hidden + j)] +=
              d * h[static_cast<size_t>(j)];
          dh[static_cast<size_t>(j)] +=
              d * w2_[static_cast<size_t>(o * hidden + j)];
        }
      }
      for (int64_t j = 0; j < hidden; ++j) {
        if (pre[static_cast<size_t>(j)] <= 0) continue;
        double d = dh[static_cast<size_t>(j)];
        g_b1[static_cast<size_t>(j)] += d;
        for (int64_t i = 0; i < in_dim; ++i) {
          g_w1[static_cast<size_t>(j * in_dim + i)] +=
              d * x[static_cast<size_t>(i)];
        }
      }
    }
    train_loss_ = loss / static_cast<double>(m * out_dim);

    // Adam update over the concatenated parameter vector.
    ++step;
    const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(step));
    const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(step));
    size_t k = 0;
    auto update = [&](std::vector<double>* w, const std::vector<double>& g) {
      const double inv_m = 1.0 / static_cast<double>(m);
      for (size_t i = 0; i < w->size(); ++i, ++k) {
        double grad = g[i] * inv_m;
        m1[k] = beta1 * m1[k] + (1 - beta1) * grad;
        v1[k] = beta2 * v1[k] + (1 - beta2) * grad * grad;
        (*w)[i] -= lr * (m1[k] / bc1) / (std::sqrt(v1[k] / bc2) + eps);
      }
    };
    update(&w1_, g_w1);
    update(&b1_, g_b1);
    update(&w2_, g_w2);
    update(&b2_, g_b2);
  }
  fitted_ = true;
  return Status::OK();
}

std::vector<double> FeedForwardForecast::Apply(
    const std::vector<double>& input) const {
  const int64_t in_dim = options_.pooled_per_day;
  const int64_t out_dim = options_.pooled_per_day;
  const int64_t hidden = options_.hidden;
  std::vector<double> h(static_cast<size_t>(hidden));
  for (int64_t j = 0; j < hidden; ++j) {
    double a = b1_[static_cast<size_t>(j)];
    for (int64_t i = 0; i < in_dim; ++i) {
      a += w1_[static_cast<size_t>(j * in_dim + i)] *
           input[static_cast<size_t>(i)];
    }
    h[static_cast<size_t>(j)] = a > 0 ? a : 0.0;
  }
  std::vector<double> y(static_cast<size_t>(out_dim));
  for (int64_t o = 0; o < out_dim; ++o) {
    double a = b2_[static_cast<size_t>(o)];
    for (int64_t j = 0; j < hidden; ++j) {
      a += w2_[static_cast<size_t>(o * hidden + j)] *
           h[static_cast<size_t>(j)];
    }
    y[static_cast<size_t>(o)] = a;
  }
  return y;
}

Result<LoadSeries> FeedForwardForecast::Forecast(
    const LoadSeries& recent, MinuteStamp start,
    int64_t horizon_minutes) const {
  if (!fitted_) return Status::FailedPrecondition("network is not fitted");
  const int64_t interval = interval_;
  if (start % interval != 0 || horizon_minutes % interval != 0) {
    return Status::Invalid("forecast range must be grid-aligned");
  }
  const int64_t ticks_day = TicksPerDay(interval);
  LoadSeries ctx_series = InterpolateMissing(
      recent.Slice(start - kMinutesPerDay, start));
  if (ctx_series.size() < ticks_day) {
    return Status::FailedPrecondition("need one day of context");
  }
  std::vector<double> ctx(static_cast<size_t>(ticks_day));
  for (int64_t i = 0; i < ticks_day; ++i) {
    double v = ctx_series.ValueAtTime(start - (ticks_day - i) * interval);
    ctx[static_cast<size_t>(i)] = IsMissing(v) ? 0.0 : v / scale_;
  }

  const int64_t steps = horizon_minutes / interval;
  std::vector<double> out;
  out.reserve(static_cast<size_t>(steps));
  // Roll forward one day at a time, feeding predictions back for
  // multi-day horizons.
  while (static_cast<int64_t>(out.size()) < steps) {
    std::vector<double> pooled = Pool(ctx, options_.pooled_per_day);
    std::vector<double> pred = Apply(pooled);
    // Upsample pooled predictions back to the raw grid (step function —
    // the LL-window metrics average over windows anyway).
    const int64_t per = ticks_day / options_.pooled_per_day;
    std::vector<double> day(static_cast<size_t>(ticks_day));
    for (int64_t i = 0; i < ticks_day; ++i) {
      double v = pred[static_cast<size_t>(i / per)] * scale_;
      day[static_cast<size_t>(i)] = std::clamp(v, 0.0, 200.0);
    }
    for (int64_t i = 0;
         i < ticks_day && static_cast<int64_t>(out.size()) < steps; ++i) {
      out.push_back(day[static_cast<size_t>(i)]);
    }
    for (int64_t i = 0; i < ticks_day; ++i) {
      ctx[static_cast<size_t>(i)] = day[static_cast<size_t>(i)] / scale_;
    }
  }
  return LoadSeries::Make(start, interval, std::move(out));
}

Result<Json> FeedForwardForecast::Serialize() const {
  if (!fitted_) return Status::FailedPrecondition("serialize before fit");
  Json doc = Json::MakeObject();
  doc["model"] = name();
  doc["interval"] = interval_;
  doc["pooled"] = options_.pooled_per_day;
  doc["hidden"] = options_.hidden;
  doc["scale"] = scale_;
  auto dump = [](const std::vector<double>& w) {
    Json arr = Json::MakeArray();
    for (double v : w) arr.Append(v);
    return arr;
  };
  doc["w1"] = dump(w1_);
  doc["b1"] = dump(b1_);
  doc["w2"] = dump(w2_);
  doc["b2"] = dump(b2_);
  return doc;
}

Status FeedForwardForecast::Deserialize(const Json& doc) {
  SEAGULL_ASSIGN_OR_RETURN(double interval, doc.GetNumber("interval"));
  SEAGULL_ASSIGN_OR_RETURN(double pooled, doc.GetNumber("pooled"));
  SEAGULL_ASSIGN_OR_RETURN(double hidden, doc.GetNumber("hidden"));
  SEAGULL_ASSIGN_OR_RETURN(scale_, doc.GetNumber("scale"));
  interval_ = static_cast<int64_t>(interval);
  options_.pooled_per_day = static_cast<int64_t>(pooled);
  options_.hidden = static_cast<int64_t>(hidden);
  auto load = [&doc](const char* key, std::vector<double>* w) -> Status {
    const Json& arr = doc[key];
    if (!arr.is_array()) return Status::Invalid("missing weights");
    w->clear();
    for (const auto& v : arr.AsArray()) {
      if (!v.is_number()) return Status::Invalid("non-numeric weight");
      w->push_back(v.AsDouble());
    }
    return Status::OK();
  };
  SEAGULL_RETURN_NOT_OK(load("w1", &w1_));
  SEAGULL_RETURN_NOT_OK(load("b1", &b1_));
  SEAGULL_RETURN_NOT_OK(load("w2", &w2_));
  SEAGULL_RETURN_NOT_OK(load("b2", &b2_));
  fitted_ = true;
  return Status::OK();
}

}  // namespace seagull
