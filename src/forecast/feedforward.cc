#include "forecast/feedforward.h"

#include <algorithm>
#include <cmath>

#include "forecast/scratch.h"
#include "timeseries/resample.h"

namespace seagull {

namespace {

/// Average-pools `raw` (`raw_n` values, one per raw tick) into `bins`
/// equal bins written to `out`.
void PoolInto(const double* raw, int64_t raw_n, int64_t bins, double* out) {
  const int64_t per = raw_n / bins;
  for (int64_t b = 0; b < bins; ++b) {
    double sum = 0.0;
    for (int64_t k = 0; k < per; ++k) {
      sum += raw[b * per + k];
    }
    out[b] = sum / static_cast<double>(per);
  }
}

/// Vector-returning wrapper for the inference path.
std::vector<double> Pool(const std::vector<double>& raw, int64_t bins) {
  std::vector<double> out(static_cast<size_t>(bins), 0.0);
  PoolInto(raw.data(), static_cast<int64_t>(raw.size()), bins, out.data());
  return out;
}

}  // namespace

Status FeedForwardForecast::Fit(const LoadSeries& train) {
  const LoadSeries filled = InterpolateMissing(train);
  interval_ = filled.interval_minutes();
  const int64_t ticks_day = filled.ticks_per_day();
  const int64_t in_dim = options_.pooled_per_day;
  const int64_t out_dim = options_.pooled_per_day;
  const int64_t hidden = options_.hidden;
  if (ticks_day % in_dim != 0) {
    return Status::Invalid("pooled_per_day must divide samples per day");
  }
  if (filled.size() < 2 * ticks_day + 1) {
    return Status::FailedPrecondition(
        "feed-forward training needs at least two days of history");
  }

  // Build sliding (context day -> next day) training pairs, pooled
  // straight into contiguous scratch matrices: one row per pair, so the
  // epoch loop below streams them with raw row pointers and the whole
  // construction reuses the thread's retained capacity across fits.
  KernelScratch& scratch = KernelScratch::Local();
  int64_t m = 0;
  for (int64_t off = 0; off + 2 * ticks_day <= filled.size();
       off += options_.stride) {
    ++m;
  }
  if (m == 0) return Status::FailedPrecondition("no training windows");
  Matrix& inputs = scratch.Mat(kscratch::kMatFfInputs, m, in_dim);
  Matrix& targets = scratch.Mat(kscratch::kMatFfTargets, m, out_dim);
  {
    std::vector<double>& raw =
        scratch.Vec(kscratch::kFfActivations, static_cast<size_t>(2 * ticks_day));
    double* ctx = raw.data();
    double* nxt = raw.data() + ticks_day;
    int64_t row = 0;
    for (int64_t off = 0; off + 2 * ticks_day <= filled.size();
         off += options_.stride, ++row) {
      for (int64_t i = 0; i < ticks_day; ++i) {
        ctx[i] = filled.ValueAt(off + i) / scale_;
        nxt[i] = filled.ValueAt(off + ticks_day + i) / scale_;
      }
      PoolInto(ctx, ticks_day, in_dim, inputs.Row(row));
      PoolInto(nxt, ticks_day, out_dim, targets.Row(row));
    }
  }

  // He-initialized parameters.
  Rng rng(options_.seed);
  auto init = [&rng](std::vector<double>* w, int64_t n, double fan_in) {
    w->resize(static_cast<size_t>(n));
    double s = std::sqrt(2.0 / fan_in);
    for (auto& v : *w) v = rng.Gaussian(0.0, s);
  };
  init(&w1_, hidden * in_dim, static_cast<double>(in_dim));
  b1_.assign(static_cast<size_t>(hidden), 0.0);
  init(&w2_, out_dim * hidden, static_cast<double>(hidden));
  b2_.assign(static_cast<size_t>(out_dim), 0.0);

  // Adam state and gradient accumulators live in the scratch arena; the
  // activation workspace packs h/pre/yhat/dy into one slot (it re-slices
  // the buffer the pooling pass above used — its contents are dead now).
  const size_t np = w1_.size() + b1_.size() + w2_.size() + b2_.size();
  std::vector<double>& m1 = scratch.VecZero(kscratch::kFfAdamM, np);
  std::vector<double>& v1 = scratch.VecZero(kscratch::kFfAdamV, np);
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  const double lr = options_.learning_rate;

  std::vector<double>& g_w1 = scratch.Vec(kscratch::kFfGradW1, w1_.size());
  std::vector<double>& g_b1 = scratch.Vec(kscratch::kFfGradB1, b1_.size());
  std::vector<double>& g_w2 = scratch.Vec(kscratch::kFfGradW2, w2_.size());
  std::vector<double>& g_b2 = scratch.Vec(kscratch::kFfGradB2, b2_.size());
  std::vector<double>& act = scratch.Vec(
      kscratch::kFfActivations, static_cast<size_t>(3 * hidden + 2 * out_dim));
  double* h = act.data();
  double* pre = h + hidden;
  double* dh = pre + hidden;
  double* yhat = dh + hidden;
  double* dy = yhat + out_dim;

  int64_t step = 0;
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    std::fill(g_w1.begin(), g_w1.end(), 0.0);
    std::fill(g_b1.begin(), g_b1.end(), 0.0);
    std::fill(g_w2.begin(), g_w2.end(), 0.0);
    std::fill(g_b2.begin(), g_b2.end(), 0.0);
    double loss = 0.0;
    for (int64_t s = 0; s < m; ++s) {
      const double* x = inputs.Row(s);
      const double* y = targets.Row(s);
      // Forward.
      for (int64_t j = 0; j < hidden; ++j) {
        double a = b1_[static_cast<size_t>(j)];
        const double* w1r = w1_.data() + j * in_dim;
        for (int64_t i = 0; i < in_dim; ++i) {
          a += w1r[i] * x[i];
        }
        pre[j] = a;
        h[j] = a > 0 ? a : 0.0;
      }
      for (int64_t o = 0; o < out_dim; ++o) {
        double a = b2_[static_cast<size_t>(o)];
        const double* w2r = w2_.data() + o * hidden;
        for (int64_t j = 0; j < hidden; ++j) {
          a += w2r[j] * h[j];
        }
        yhat[o] = a;
        double d = a - y[o];
        dy[o] = d;
        loss += d * d;
      }
      // Backward.
      std::fill(dh, dh + hidden, 0.0);
      for (int64_t o = 0; o < out_dim; ++o) {
        double d = dy[o];
        g_b2[static_cast<size_t>(o)] += d;
        double* g_w2r = g_w2.data() + o * hidden;
        const double* w2r = w2_.data() + o * hidden;
        for (int64_t j = 0; j < hidden; ++j) {
          g_w2r[j] += d * h[j];
          dh[j] += d * w2r[j];
        }
      }
      for (int64_t j = 0; j < hidden; ++j) {
        if (pre[j] <= 0) continue;
        double d = dh[j];
        g_b1[static_cast<size_t>(j)] += d;
        double* g_w1r = g_w1.data() + j * in_dim;
        for (int64_t i = 0; i < in_dim; ++i) {
          g_w1r[i] += d * x[i];
        }
      }
    }
    train_loss_ = loss / static_cast<double>(m * out_dim);

    // Adam update over the concatenated parameter vector.
    ++step;
    const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(step));
    const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(step));
    size_t k = 0;
    auto update = [&](std::vector<double>* w, const std::vector<double>& g) {
      const double inv_m = 1.0 / static_cast<double>(m);
      for (size_t i = 0; i < w->size(); ++i, ++k) {
        double grad = g[i] * inv_m;
        m1[k] = beta1 * m1[k] + (1 - beta1) * grad;
        v1[k] = beta2 * v1[k] + (1 - beta2) * grad * grad;
        (*w)[i] -= lr * (m1[k] / bc1) / (std::sqrt(v1[k] / bc2) + eps);
      }
    };
    update(&w1_, g_w1);
    update(&b1_, g_b1);
    update(&w2_, g_w2);
    update(&b2_, g_b2);
  }
  fitted_ = true;
  return Status::OK();
}

std::vector<double> FeedForwardForecast::Apply(
    const std::vector<double>& input) const {
  const int64_t in_dim = options_.pooled_per_day;
  const int64_t out_dim = options_.pooled_per_day;
  const int64_t hidden = options_.hidden;
  std::vector<double> h(static_cast<size_t>(hidden));
  for (int64_t j = 0; j < hidden; ++j) {
    double a = b1_[static_cast<size_t>(j)];
    for (int64_t i = 0; i < in_dim; ++i) {
      a += w1_[static_cast<size_t>(j * in_dim + i)] *
           input[static_cast<size_t>(i)];
    }
    h[static_cast<size_t>(j)] = a > 0 ? a : 0.0;
  }
  std::vector<double> y(static_cast<size_t>(out_dim));
  for (int64_t o = 0; o < out_dim; ++o) {
    double a = b2_[static_cast<size_t>(o)];
    for (int64_t j = 0; j < hidden; ++j) {
      a += w2_[static_cast<size_t>(o * hidden + j)] *
           h[static_cast<size_t>(j)];
    }
    y[static_cast<size_t>(o)] = a;
  }
  return y;
}

Result<LoadSeries> FeedForwardForecast::Forecast(
    const LoadSeries& recent, MinuteStamp start,
    int64_t horizon_minutes) const {
  if (!fitted_) return Status::FailedPrecondition("network is not fitted");
  const int64_t interval = interval_;
  if (start % interval != 0 || horizon_minutes % interval != 0) {
    return Status::Invalid("forecast range must be grid-aligned");
  }
  const int64_t ticks_day = TicksPerDay(interval);
  LoadSeries ctx_series = InterpolateMissing(
      recent.Slice(start - kMinutesPerDay, start));
  if (ctx_series.size() < ticks_day) {
    return Status::FailedPrecondition("need one day of context");
  }
  std::vector<double> ctx(static_cast<size_t>(ticks_day));
  for (int64_t i = 0; i < ticks_day; ++i) {
    double v = ctx_series.ValueAtTime(start - (ticks_day - i) * interval);
    ctx[static_cast<size_t>(i)] = IsMissing(v) ? 0.0 : v / scale_;
  }

  const int64_t steps = horizon_minutes / interval;
  std::vector<double> out;
  out.reserve(static_cast<size_t>(steps));
  // Roll forward one day at a time, feeding predictions back for
  // multi-day horizons.
  while (static_cast<int64_t>(out.size()) < steps) {
    std::vector<double> pooled = Pool(ctx, options_.pooled_per_day);
    std::vector<double> pred = Apply(pooled);
    // Upsample pooled predictions back to the raw grid (step function —
    // the LL-window metrics average over windows anyway).
    const int64_t per = ticks_day / options_.pooled_per_day;
    std::vector<double> day(static_cast<size_t>(ticks_day));
    for (int64_t i = 0; i < ticks_day; ++i) {
      double v = pred[static_cast<size_t>(i / per)] * scale_;
      day[static_cast<size_t>(i)] = std::clamp(v, 0.0, 200.0);
    }
    for (int64_t i = 0;
         i < ticks_day && static_cast<int64_t>(out.size()) < steps; ++i) {
      out.push_back(day[static_cast<size_t>(i)]);
    }
    for (int64_t i = 0; i < ticks_day; ++i) {
      ctx[static_cast<size_t>(i)] = day[static_cast<size_t>(i)] / scale_;
    }
  }
  return LoadSeries::Make(start, interval, std::move(out));
}

Result<Json> FeedForwardForecast::Serialize() const {
  if (!fitted_) return Status::FailedPrecondition("serialize before fit");
  Json doc = Json::MakeObject();
  doc["model"] = name();
  doc["interval"] = interval_;
  doc["pooled"] = options_.pooled_per_day;
  doc["hidden"] = options_.hidden;
  doc["scale"] = scale_;
  auto dump = [](const std::vector<double>& w) {
    Json arr = Json::MakeArray();
    for (double v : w) arr.Append(v);
    return arr;
  };
  doc["w1"] = dump(w1_);
  doc["b1"] = dump(b1_);
  doc["w2"] = dump(w2_);
  doc["b2"] = dump(b2_);
  return doc;
}

Status FeedForwardForecast::Deserialize(const Json& doc) {
  SEAGULL_ASSIGN_OR_RETURN(double interval, doc.GetNumber("interval"));
  SEAGULL_ASSIGN_OR_RETURN(double pooled, doc.GetNumber("pooled"));
  SEAGULL_ASSIGN_OR_RETURN(double hidden, doc.GetNumber("hidden"));
  SEAGULL_ASSIGN_OR_RETURN(scale_, doc.GetNumber("scale"));
  interval_ = static_cast<int64_t>(interval);
  options_.pooled_per_day = static_cast<int64_t>(pooled);
  options_.hidden = static_cast<int64_t>(hidden);
  auto load = [&doc](const char* key, std::vector<double>* w) -> Status {
    const Json& arr = doc[key];
    if (!arr.is_array()) return Status::Invalid("missing weights");
    w->clear();
    for (const auto& v : arr.AsArray()) {
      if (!v.is_number()) return Status::Invalid("non-numeric weight");
      w->push_back(v.AsDouble());
    }
    return Status::OK();
  };
  SEAGULL_RETURN_NOT_OK(load("w1", &w1_));
  SEAGULL_RETURN_NOT_OK(load("b1", &b1_));
  SEAGULL_RETURN_NOT_OK(load("w2", &w2_));
  SEAGULL_RETURN_NOT_OK(load("b2", &b2_));
  fitted_ = true;
  return Status::OK();
}

}  // namespace seagull
