#include "forecast/additive.h"

#include <algorithm>
#include <cmath>

#include "forecast/scratch.h"
#include "timeseries/resample.h"

namespace seagull {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}

int64_t AdditiveForecast::NumFeatures() const {
  // intercept + base slope + changepoint slopes + 2 per Fourier term +
  // one shared holiday indicator when holidays are configured.
  return 2 + options_.changepoints +
         2 * (options_.daily_order + options_.weekly_order) +
         (options_.holidays.empty() ? 0 : 1);
}

bool AdditiveForecast::IsHoliday(int64_t day_index) const {
  for (int64_t holiday : options_.holidays) {
    if (holiday == day_index) return true;
  }
  return false;
}

namespace {

/// Writes the 2·order Fourier features sin(o·a₁), cos(o·a₁) for
/// o = 1..order. Fast mode expands the harmonics by the angle-addition
/// recurrence sin((o+1)a) = sin(oa)cos(a) + cos(oa)sin(a) — two libm
/// trig calls per block instead of 2·order — which is what makes
/// design-matrix construction cheap enough to matter once the
/// optimizer itself runs in Gram space. Scalar mode keeps the direct
/// per-harmonic trig as the textbook reference (the recurrence rounds
/// differently: different — but fixed — association).
int64_t WriteFourierBlock(double phase, int64_t order, bool fast,
                          double* phi) {
  int64_t k = 0;
  const double a1 = kTwoPi * phase;
  if (fast) {
    const double s1 = std::sin(a1);
    const double c1 = std::cos(a1);
    double s = 0.0, c = 1.0;  // sin(0·a₁), cos(0·a₁)
    for (int64_t o = 1; o <= order; ++o) {
      const double ns = s * c1 + c * s1;
      const double nc = c * c1 - s * s1;
      s = ns;
      c = nc;
      phi[k++] = s;
      phi[k++] = c;
    }
  } else {
    // Same association as the original loop: (2π·o)·phase.
    for (int64_t o = 1; o <= order; ++o) {
      double a = kTwoPi * static_cast<double>(o) * phase;
      phi[k++] = std::sin(a);
      phi[k++] = std::cos(a);
    }
  }
  return k;
}

}  // namespace

void AdditiveForecast::FeaturesAt(MinuteStamp t, double* phi) const {
  const double span =
      std::max<double>(1.0, static_cast<double>(train_end_ - train_start_));
  const double x = static_cast<double>(t - train_start_) / span;  // scaled time
  int64_t k = 0;
  phi[k++] = 1.0;  // intercept
  phi[k++] = x;    // base slope
  for (int64_t c = 0; c < options_.changepoints; ++c) {
    double cp = static_cast<double>(c + 1) /
                static_cast<double>(options_.changepoints + 1);
    phi[k++] = x > cp ? (x - cp) : 0.0;
  }
  const bool fast = GetKernelMode() == KernelMode::kFast;
  const double day_phase =
      static_cast<double>(MinuteOfDay(t)) / static_cast<double>(kMinutesPerDay);
  k += WriteFourierBlock(day_phase, options_.daily_order, fast, phi + k);
  const double week_phase = static_cast<double>(t - StartOfWeek(t)) /
                            static_cast<double>(kMinutesPerWeek);
  k += WriteFourierBlock(week_phase, options_.weekly_order, fast, phi + k);
  if (!options_.holidays.empty()) {
    phi[k++] = IsHoliday(DayIndex(t)) ? 1.0 : 0.0;
  }
}

void AdditiveForecast::SetTrainRange(const LoadSeries& filled) {
  interval_ = filled.interval_minutes();
  train_start_ = filled.start();
  train_end_ = filled.end();
}

Status AdditiveForecast::Fit(const LoadSeries& train) {
  if (train.CountPresent() < 8) {
    return Status::FailedPrecondition("additive model needs history");
  }
  const LoadSeries filled = InterpolateMissing(train);
  SetTrainRange(filled);

  const int64_t n = filled.size();
  const int64_t p = NumFeatures();

  // Precompute the design matrix once; the optimizer then iterates
  // full-batch gradient steps (the MAP loop that dominates Prophet's
  // training cost). The matrix was an n-vector of p-vectors — one heap
  // allocation per sample and a pointer chase per row; it is now one
  // contiguous scratch-arena matrix streamed by row pointer.
  KernelScratch& scratch = KernelScratch::Local();
  Matrix& design = scratch.Mat(kscratch::kMatAddDesign, n, p);
  for (int64_t i = 0; i < n; ++i) {
    FeaturesAt(filled.TimeAt(i), design.Row(i));
  }
  if (GetKernelMode() == KernelMode::kFast) {
    // Collapse the design into its p×p Gram via the cache-blocked AtA
    // kernel; every optimizer iteration then costs O(p²), not O(n·p).
    Matrix& gram = scratch.Mat(kscratch::kMatAddGram, 0, 0);
    gram = AtA(design);
    return FitWithDesign(filled, design, &gram);
  }
  return FitWithDesign(filled, design, nullptr);
}

Status AdditiveForecast::FitWithDesign(const LoadSeries& filled,
                                       const Matrix& design,
                                       const Matrix* gram) {
  const int64_t n = filled.size();
  const int64_t p = NumFeatures();
  coef_.assign(static_cast<size_t>(p), 0.0);
  coef_[0] = filled.Mean();  // warm-start the intercept

  KernelScratch& scratch = KernelScratch::Local();
  std::vector<double>& y =
      scratch.Vec(kscratch::kAddTargets, static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    y[static_cast<size_t>(i)] = filled.ValueAt(i);
  }
  std::vector<double>& grad =
      scratch.Vec(kscratch::kAddGrad, static_cast<size_t>(p));
  const double inv_n = 1.0 / static_cast<double>(n);
  double lr = options_.learning_rate;
  double prev_loss = 0.0;
  if (gram != nullptr) {
    // Gram-space iteration: with G = AᵀA, b = Aᵀy and yᵀy precomputed,
    //   ‖A·c − y‖² = cᵀGc − 2bᵀc + yᵀy   and   ∇ = Gc − b,
    // so each step touches p² doubles instead of n·p. The loss/grad
    // values round differently from the row-streaming reference below
    // (different — but fixed — association), which is why this branch
    // is gated on kernel mode like every other fast path.
    std::vector<double>& b =
        scratch.Vec(kscratch::kAddRhs, static_cast<size_t>(p));
    {
      std::vector<double> rhs = TransposeMatVec(design, y);
      std::copy(rhs.begin(), rhs.end(), b.begin());
    }
    const double yty = Dot(y.data(), y.data(), n);
    std::vector<double>& gc =
        scratch.Vec(kscratch::kAddGramCoef, static_cast<size_t>(p));
    for (int64_t it = 0; it < options_.iterations; ++it) {
      for (int64_t j = 0; j < p; ++j) {
        gc[static_cast<size_t>(j)] = Dot(gram->Row(j), coef_.data(), p);
      }
      double loss = Dot(gc.data(), coef_.data(), p) -
                    2.0 * Dot(b.data(), coef_.data(), p) + yty;
      for (int64_t j = 0; j < p; ++j) {
        grad[static_cast<size_t>(j)] =
            gc[static_cast<size_t>(j)] - b[static_cast<size_t>(j)];
      }
      // Ridge prior on changepoint slopes only.
      for (int64_t c = 0; c < options_.changepoints; ++c) {
        size_t j = static_cast<size_t>(2 + c);
        grad[j] += options_.changepoint_penalty * coef_[j];
      }
      for (int64_t j = 0; j < p; ++j) {
        coef_[static_cast<size_t>(j)] -=
            lr * grad[static_cast<size_t>(j)] * inv_n;
      }
      loss *= inv_n;
      // Crude line-search: back off when the loss increases.
      if (it > 0 && loss > prev_loss) lr *= 0.5;
      prev_loss = loss;
    }
  } else {
    // Scalar reference: stream the design rows every iteration.
    for (int64_t it = 0; it < options_.iterations; ++it) {
      std::fill(grad.begin(), grad.end(), 0.0);
      double loss = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        const double* phi = design.Row(i);
        double pred = 0.0;
        for (int64_t j = 0; j < p; ++j) {
          pred += coef_[static_cast<size_t>(j)] * phi[j];
        }
        double err = pred - y[static_cast<size_t>(i)];
        loss += err * err;
        for (int64_t j = 0; j < p; ++j) {
          grad[static_cast<size_t>(j)] += err * phi[j];
        }
      }
      // Ridge prior on changepoint slopes only.
      for (int64_t c = 0; c < options_.changepoints; ++c) {
        size_t j = static_cast<size_t>(2 + c);
        grad[j] += options_.changepoint_penalty * coef_[j];
      }
      for (int64_t j = 0; j < p; ++j) {
        coef_[static_cast<size_t>(j)] -=
            lr * grad[static_cast<size_t>(j)] * inv_n;
      }
      loss *= inv_n;
      // Crude line-search: back off when the loss increases.
      if (it > 0 && loss > prev_loss) lr *= 0.5;
      prev_loss = loss;
    }
  }
  residual_sigma_ = std::sqrt(std::max(prev_loss, 0.0));
  fitted_ = true;
  return Status::OK();
}

Result<LoadSeries> AdditiveForecast::Forecast(const LoadSeries& recent,
                                              MinuteStamp start,
                                              int64_t horizon_minutes) const {
  (void)recent;  // curve model: conditioned on time alone
  if (!fitted_) return Status::FailedPrecondition("model is not fitted");
  if (start % interval_ != 0 || horizon_minutes % interval_ != 0) {
    return Status::Invalid("forecast range must be grid-aligned");
  }
  const int64_t steps = horizon_minutes / interval_;
  const int64_t p = NumFeatures();
  std::vector<double>& phi_buf = KernelScratch::Local().Vec(
      kscratch::kAddFeatures, static_cast<size_t>(p));
  double* phi = phi_buf.data();
  std::vector<double> out(static_cast<size_t>(steps), 0.0);

  // Monte-Carlo trend uncertainty (Prophet's predictive intervals): the
  // point forecast is the mean over simulated trend continuations. This
  // is what makes the original's inference expensive; we keep it (with a
  // bounded sample count) so the cost shape carries over.
  Rng rng(options_.seed ^ static_cast<uint64_t>(start));
  const int64_t sims = std::max<int64_t>(1, options_.uncertainty_samples);
  const double span =
      std::max<double>(1.0, static_cast<double>(train_end_ - train_start_));
  for (int64_t i = 0; i < steps; ++i) {
    MinuteStamp t = start + i * interval_;
    FeaturesAt(t, phi);
    double base = 0.0;
    for (int64_t j = 0; j < p; ++j) {
      base += coef_[static_cast<size_t>(j)] * phi[j];
    }
    // Simulate extra trend drift beyond the training range.
    double beyond =
        std::max(0.0, static_cast<double>(t - train_end_) / span);
    double acc = 0.0;
    for (int64_t s = 0; s < sims; ++s) {
      double drift = rng.Gaussian(0.0, 0.3 * residual_sigma_ * beyond);
      acc += base + drift;
    }
    out[static_cast<size_t>(i)] =
        std::clamp(acc / static_cast<double>(sims), 0.0, 200.0);
  }
  return LoadSeries::Make(start, interval_, std::move(out));
}

Result<Json> AdditiveForecast::Serialize() const {
  if (!fitted_) return Status::FailedPrecondition("serialize before fit");
  Json doc = Json::MakeObject();
  doc["model"] = name();
  doc["interval"] = interval_;
  doc["train_start"] = train_start_;
  doc["train_end"] = train_end_;
  doc["daily_order"] = options_.daily_order;
  doc["weekly_order"] = options_.weekly_order;
  doc["changepoints"] = options_.changepoints;
  doc["uncertainty_samples"] = options_.uncertainty_samples;
  doc["seed"] = static_cast<int64_t>(options_.seed);
  doc["residual_sigma"] = residual_sigma_;
  Json holidays = Json::MakeArray();
  for (int64_t day : options_.holidays) holidays.Append(day);
  doc["holidays"] = std::move(holidays);
  Json coeffs = Json::MakeArray();
  for (double c : coef_) coeffs.Append(c);
  doc["coef"] = std::move(coeffs);
  return doc;
}

Status AdditiveForecast::Deserialize(const Json& doc) {
  SEAGULL_ASSIGN_OR_RETURN(double interval, doc.GetNumber("interval"));
  SEAGULL_ASSIGN_OR_RETURN(double ts, doc.GetNumber("train_start"));
  SEAGULL_ASSIGN_OR_RETURN(double te, doc.GetNumber("train_end"));
  SEAGULL_ASSIGN_OR_RETURN(double d, doc.GetNumber("daily_order"));
  SEAGULL_ASSIGN_OR_RETURN(double w, doc.GetNumber("weekly_order"));
  SEAGULL_ASSIGN_OR_RETURN(double c, doc.GetNumber("changepoints"));
  SEAGULL_ASSIGN_OR_RETURN(residual_sigma_, doc.GetNumber("residual_sigma"));
  interval_ = static_cast<int64_t>(interval);
  train_start_ = static_cast<MinuteStamp>(ts);
  train_end_ = static_cast<MinuteStamp>(te);
  options_.daily_order = static_cast<int64_t>(d);
  options_.weekly_order = static_cast<int64_t>(w);
  options_.changepoints = static_cast<int64_t>(c);
  // Inference behaviour (Monte-Carlo sampling) must round-trip too, so a
  // restored endpoint reproduces the deployed model exactly.
  SEAGULL_ASSIGN_OR_RETURN(double samples,
                           doc.GetNumber("uncertainty_samples"));
  SEAGULL_ASSIGN_OR_RETURN(double seed, doc.GetNumber("seed"));
  options_.uncertainty_samples = static_cast<int64_t>(samples);
  options_.seed = static_cast<uint64_t>(seed);
  options_.holidays.clear();
  if (doc["holidays"].is_array()) {
    for (const auto& day : doc["holidays"].AsArray()) {
      if (!day.is_number()) return Status::Invalid("non-numeric holiday");
      options_.holidays.push_back(static_cast<int64_t>(day.AsDouble()));
    }
  }
  if (!doc["coef"].is_array()) return Status::Invalid("missing coef array");
  coef_.clear();
  for (const auto& v : doc["coef"].AsArray()) {
    if (!v.is_number()) return Status::Invalid("non-numeric coefficient");
    coef_.push_back(v.AsDouble());
  }
  if (static_cast<int64_t>(coef_.size()) != NumFeatures()) {
    return Status::Invalid("coefficient count mismatch");
  }
  fitted_ = true;
  return Status::OK();
}

}  // namespace seagull
