/// \file model.h
/// \brief Pluggable forecast-model interface (§2.1: "any ML model can be
/// plugged in") plus the model factory used by deployment and tracking.

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "timeseries/series.h"

namespace seagull {

/// \brief A trained (or heuristic) per-server load forecaster.
///
/// Lifecycle: construct → `Fit` on training history → `Forecast` any
/// number of times. `Forecast` additionally receives the most recent
/// telemetry so that autoregressive models (and the persistent-forecast
/// heuristics, which have no parameters at all) can condition on it.
///
/// Thread-safety contract (enforced by the fleet execution engine):
/// `Forecast` and `Serialize` are const and MUST be safe to call from
/// many threads on one instance — heuristic families deploy a single
/// fleet-wide model that every per-server worker queries concurrently.
/// Implementations must not lazily mutate state in const methods; any
/// randomness must come from an RNG constructed locally per call and
/// seeded from configuration (never from global or time-based state),
/// which is also what makes parallel runs bit-identical to sequential
/// ones (tests/fleet_determinism_test.cc). `Fit` and `Deserialize` are
/// the only mutating phase and are called from exactly one thread per
/// instance.
class ForecastModel {
 public:
  virtual ~ForecastModel() = default;

  /// Stable model-family name, e.g. "persistent_prev_day" or "ssa".
  virtual std::string name() const = 0;

  /// False for the persistent-forecast heuristics, which have no
  /// training phase (§5.3.3).
  virtual bool requires_training() const { return true; }

  /// Estimates parameters from training history. Implementations must
  /// tolerate missing samples.
  virtual Status Fit(const LoadSeries& train) = 0;

  /// Predicts load on [start, start + horizon_minutes) at the history's
  /// granularity. `recent` is the telemetry available up to `start`.
  virtual Result<LoadSeries> Forecast(const LoadSeries& recent,
                                      MinuteStamp start,
                                      int64_t horizon_minutes) const = 0;

  /// Serializes fitted parameters for deployment (model registry, REST
  /// endpoint analog). The JSON must round-trip through the factory.
  virtual Result<Json> Serialize() const = 0;

  /// Restores fitted parameters serialized by `Serialize`.
  virtual Status Deserialize(const Json& doc) = 0;
};

/// \brief Registry of model constructors, keyed by family name.
///
/// Model Deployment writes serialized models here and Inference
/// re-instantiates them; the tracking module stores (name, version,
/// params) documents and falls back to the previous known-good version
/// when accuracy regresses (§1).
///
/// `Global()` is initialized once (thread-safe magic static); after
/// that, `Create`/`Restore`/`Names` are const reads and safe to call
/// concurrently from pool workers. `Register` is not synchronized —
/// custom families must be registered before parallel execution starts.
class ModelFactory {
 public:
  using Constructor = std::function<std::unique_ptr<ForecastModel>()>;

  /// The process-wide factory with all built-in families registered.
  static ModelFactory& Global();

  /// Registers a family; overwrites any existing registration.
  void Register(const std::string& name, Constructor ctor);

  /// Creates an unfitted instance of a family.
  Result<std::unique_ptr<ForecastModel>> Create(const std::string& name) const;

  /// Restores a model from a serialized document ({"model": name, ...}).
  Result<std::unique_ptr<ForecastModel>> Restore(const Json& doc) const;

  /// Registered family names, sorted.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Constructor> ctors_;
};

/// Convenience: wraps a serialized model with its family name.
Json WrapModelDoc(const ForecastModel& model, const Json& params);

}  // namespace seagull
