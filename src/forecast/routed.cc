#include "forecast/routed.h"

namespace seagull {

const std::string& RoutedForecast::FamilyFor(ServerClass cls) const {
  switch (cls) {
    case ServerClass::kStable:
      return options_.stable_family;
    case ServerClass::kDailyPattern:
      return options_.daily_family;
    case ServerClass::kWeeklyPattern:
      return options_.weekly_family;
    case ServerClass::kShortLived:
    case ServerClass::kNoPattern:
      return options_.unstable_family;
  }
  return options_.unstable_family;
}

std::string RoutedForecast::delegate_family() const {
  return delegate_ ? delegate_->name() : "";
}

Status RoutedForecast::Fit(const LoadSeries& train) {
  if (train.CountPresent() < 4) {
    return Status::FailedPrecondition("routed model needs history");
  }
  // Classify the training span itself; the lifespan gate is irrelevant
  // here (the caller decides which servers get a model at all).
  FleetConfig no_gate;
  no_gate.long_lived_weeks = 0;
  ClassificationResult cls =
      ClassifyServer(train, train.start(), train.end(), train.start(),
                     train.end(), AccuracyConfig{}, no_gate);
  routed_class_ = cls.server_class;

  SEAGULL_ASSIGN_OR_RETURN(
      delegate_, ModelFactory::Global().Create(FamilyFor(routed_class_)));
  if (delegate_->requires_training()) {
    SEAGULL_RETURN_NOT_OK(delegate_->Fit(train));
  } else {
    SEAGULL_RETURN_NOT_OK(delegate_->Fit(train));  // no-op, kept uniform
  }
  return Status::OK();
}

Result<LoadSeries> RoutedForecast::Forecast(const LoadSeries& recent,
                                            MinuteStamp start,
                                            int64_t horizon_minutes) const {
  if (!delegate_) {
    return Status::FailedPrecondition("routed model is not fitted");
  }
  return delegate_->Forecast(recent, start, horizon_minutes);
}

Result<Json> RoutedForecast::Serialize() const {
  if (!delegate_) {
    return Status::FailedPrecondition("serialize before fit");
  }
  Json doc = Json::MakeObject();
  doc["model"] = name();
  doc["routed_class"] = static_cast<int64_t>(routed_class_);
  SEAGULL_ASSIGN_OR_RETURN(Json inner, delegate_->Serialize());
  doc["delegate"] = std::move(inner);
  return doc;
}

Status RoutedForecast::Deserialize(const Json& doc) {
  SEAGULL_ASSIGN_OR_RETURN(double cls, doc.GetNumber("routed_class"));
  int icls = static_cast<int>(cls);
  if (icls < 0 || icls > 4) return Status::Invalid("bad routed class");
  routed_class_ = static_cast<ServerClass>(icls);
  if (!doc["delegate"].is_object()) {
    return Status::Invalid("routed doc has no delegate");
  }
  SEAGULL_ASSIGN_OR_RETURN(delegate_,
                           ModelFactory::Global().Restore(doc["delegate"]));
  return Status::OK();
}

}  // namespace seagull
