/// \file arima.h
/// \brief ARIMA(p,d,q) baseline with pmdarima-style order search.
///
/// The paper evaluates ARIMA and excludes it: "it searches the optimal
/// values of six parameters per server ... fitting may take up to 3 hours
/// per server" (§2.1, §5.3.3). This implementation reproduces that cost
/// structure — a grid search over (p, d, q) with an iterative
/// conditional-sum-of-squares fit per candidate and AIC selection — at a
/// scale a benchmark can still execute.

#pragma once

#include "forecast/model.h"

namespace seagull {

/// \brief Order-search bounds and optimizer parameters.
struct ArimaOptions {
  int max_p = 3;
  int max_d = 1;
  int max_q = 3;
  /// Adam iterations per (p,d,q) candidate.
  int64_t iterations = 150;
  double learning_rate = 0.02;
};

/// \brief Grid-searched ARIMA forecaster.
class ArimaForecast final : public ForecastModel {
 public:
  explicit ArimaForecast(ArimaOptions options = {}) : options_(options) {}

  std::string name() const override { return "arima"; }
  Status Fit(const LoadSeries& train) override;
  Result<LoadSeries> Forecast(const LoadSeries& recent, MinuteStamp start,
                              int64_t horizon_minutes) const override;
  Result<Json> Serialize() const override;
  Status Deserialize(const Json& doc) override;

  int order_p() const { return p_; }
  int order_d() const { return d_; }
  int order_q() const { return q_; }
  double aic() const { return aic_; }

 private:
  ArimaOptions options_;
  bool fitted_ = false;
  int64_t interval_ = kServerIntervalMinutes;
  int p_ = 0, d_ = 0, q_ = 0;
  double c_ = 0.0;
  std::vector<double> phi_;    // AR coefficients
  std::vector<double> theta_;  // MA coefficients
  double aic_ = 0.0;
};

}  // namespace seagull
