#include "forecast/scratch.h"

namespace seagull {

KernelScratch& KernelScratch::Local() {
  static thread_local KernelScratch scratch;
  return scratch;
}

std::vector<double>& KernelScratch::Vec(int slot, size_t n) {
  std::vector<double>& v = vecs_[slot];
  v.resize(n);
  return v;
}

std::vector<double>& KernelScratch::VecZero(int slot, size_t n) {
  std::vector<double>& v = vecs_[slot];
  v.assign(n, 0.0);
  return v;
}

Matrix& KernelScratch::Mat(int slot, int64_t rows, int64_t cols) {
  Matrix& m = mats_[slot];
  m.Resize(rows, cols);
  return m;
}

size_t KernelScratch::RetainedBytes() const {
  size_t bytes = 0;
  for (const auto& v : vecs_) bytes += v.capacity() * sizeof(double);
  for (const auto& m : mats_) bytes += m.data().capacity() * sizeof(double);
  return bytes;
}

void KernelScratch::Release() {
  for (auto& v : vecs_) {
    v.clear();
    v.shrink_to_fit();
  }
  for (auto& m : mats_) {
    m.Resize(0, 0);
    m.data().shrink_to_fit();
  }
}

}  // namespace seagull
