#include "forecast/model.h"

#include "forecast/additive.h"
#include "forecast/arima.h"
#include "forecast/feedforward.h"
#include "forecast/persistent.h"
#include "forecast/routed.h"
#include "forecast/ssa.h"

namespace seagull {

ModelFactory& ModelFactory::Global() {
  static ModelFactory* factory = [] {
    auto* f = new ModelFactory();
    f->Register("persistent_prev_day", [] {
      return std::make_unique<PersistentForecast>(
          PersistentVariant::kPreviousDay);
    });
    f->Register("persistent_prev_eq_day", [] {
      return std::make_unique<PersistentForecast>(
          PersistentVariant::kPreviousEquivalentDay);
    });
    f->Register("persistent_week_avg", [] {
      return std::make_unique<PersistentForecast>(
          PersistentVariant::kPreviousWeekAverage);
    });
    f->Register("ssa", [] { return std::make_unique<SsaForecast>(); });
    f->Register("feedforward",
                [] { return std::make_unique<FeedForwardForecast>(); });
    f->Register("additive",
                [] { return std::make_unique<AdditiveForecast>(); });
    f->Register("arima", [] { return std::make_unique<ArimaForecast>(); });
    f->Register("routed", [] { return std::make_unique<RoutedForecast>(); });
    return f;
  }();
  return *factory;
}

void ModelFactory::Register(const std::string& name, Constructor ctor) {
  ctors_[name] = std::move(ctor);
}

Result<std::unique_ptr<ForecastModel>> ModelFactory::Create(
    const std::string& name) const {
  auto it = ctors_.find(name);
  if (it == ctors_.end()) {
    return Status::NotFound("unknown model family: " + name);
  }
  return it->second();
}

Result<std::unique_ptr<ForecastModel>> ModelFactory::Restore(
    const Json& doc) const {
  SEAGULL_ASSIGN_OR_RETURN(std::string name, doc.GetString("model"));
  SEAGULL_ASSIGN_OR_RETURN(auto model, Create(name));
  SEAGULL_RETURN_NOT_OK(model->Deserialize(doc));
  return model;
}

std::vector<std::string> ModelFactory::Names() const {
  std::vector<std::string> names;
  names.reserve(ctors_.size());
  for (const auto& [name, ctor] : ctors_) names.push_back(name);
  return names;
}

Json WrapModelDoc(const ForecastModel& model, const Json& params) {
  Json doc = params;
  doc["model"] = model.name();
  return doc;
}

}  // namespace seagull
