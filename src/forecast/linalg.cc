#include "forecast/linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace seagull {

std::vector<double> Matrix::Column(int64_t c) const {
  std::vector<double> out(static_cast<size_t>(rows_));
  for (int64_t r = 0; r < rows_; ++r) out[static_cast<size_t>(r)] = At(r, c);
  return out;
}

Matrix Matrix::Identity(int64_t n) {
  Matrix m(n, n);
  for (int64_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Result<Matrix> MatMul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    return Status::Invalid("matmul shape mismatch");
  }
  Matrix c(a.rows(), b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t k = 0; k < a.cols(); ++k) {
      double aik = a.At(i, k);
      if (aik == 0.0) continue;
      for (int64_t j = 0; j < b.cols(); ++j) {
        c.At(i, j) += aik * b.At(k, j);
      }
    }
  }
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) t.At(j, i) = a.At(i, j);
  }
  return t;
}

Result<std::vector<double>> MatVec(const Matrix& a,
                                   const std::vector<double>& x) {
  if (a.cols() != static_cast<int64_t>(x.size())) {
    return Status::Invalid("matvec shape mismatch");
  }
  std::vector<double> y(static_cast<size_t>(a.rows()), 0.0);
  for (int64_t i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    for (int64_t j = 0; j < a.cols(); ++j) {
      sum += a.At(i, j) * x[static_cast<size_t>(j)];
    }
    y[static_cast<size_t>(i)] = sum;
  }
  return y;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

Result<std::vector<double>> CholeskySolve(Matrix a, std::vector<double> b) {
  const int64_t n = a.rows();
  if (a.cols() != n || static_cast<int64_t>(b.size()) != n) {
    return Status::Invalid("cholesky shape mismatch");
  }
  // Factor A = L Lᵀ in the lower triangle of `a`.
  for (int64_t j = 0; j < n; ++j) {
    double d = a.At(j, j);
    for (int64_t k = 0; k < j; ++k) d -= a.At(j, k) * a.At(j, k);
    if (d <= 0.0) {
      return Status::Invalid("matrix is not positive definite");
    }
    d = std::sqrt(d);
    a.At(j, j) = d;
    for (int64_t i = j + 1; i < n; ++i) {
      double s = a.At(i, j);
      for (int64_t k = 0; k < j; ++k) s -= a.At(i, k) * a.At(j, k);
      a.At(i, j) = s / d;
    }
  }
  // Forward solve L y = b.
  for (int64_t i = 0; i < n; ++i) {
    double s = b[static_cast<size_t>(i)];
    for (int64_t k = 0; k < i; ++k) s -= a.At(i, k) * b[static_cast<size_t>(k)];
    b[static_cast<size_t>(i)] = s / a.At(i, i);
  }
  // Back solve Lᵀ x = y.
  for (int64_t i = n - 1; i >= 0; --i) {
    double s = b[static_cast<size_t>(i)];
    for (int64_t k = i + 1; k < n; ++k) {
      s -= a.At(k, i) * b[static_cast<size_t>(k)];
    }
    b[static_cast<size_t>(i)] = s / a.At(i, i);
  }
  return b;
}

Result<std::vector<double>> SolveLeastSquares(const Matrix& a,
                                              const std::vector<double>& b,
                                              double ridge) {
  if (a.rows() != static_cast<int64_t>(b.size())) {
    return Status::Invalid("least-squares shape mismatch");
  }
  const int64_t n = a.cols();
  Matrix ata(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) {
      double s = 0.0;
      for (int64_t r = 0; r < a.rows(); ++r) s += a.At(r, i) * a.At(r, j);
      ata.At(i, j) = s;
      ata.At(j, i) = s;
    }
    ata.At(i, i) += ridge;
  }
  std::vector<double> atb(static_cast<size_t>(n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (int64_t r = 0; r < a.rows(); ++r) {
      s += a.At(r, i) * b[static_cast<size_t>(r)];
    }
    atb[static_cast<size_t>(i)] = s;
  }
  auto solved = CholeskySolve(std::move(ata), std::move(atb));
  if (!solved.ok()) {
    return solved.status().WithContext("normal equations are singular");
  }
  return solved;
}

Result<SvdResult> JacobiSvd(const Matrix& a, int max_sweeps) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  if (m < n) return Status::Invalid("JacobiSvd requires rows >= cols");

  Matrix u = a;  // will become U * diag(S)
  Matrix v = Matrix::Identity(n);

  const double eps = 1e-12;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (int64_t r = 0; r < m; ++r) {
          double up = u.At(r, p), uq = u.At(r, q);
          alpha += up * up;
          beta += uq * uq;
          gamma += up * uq;
        }
        if (std::fabs(gamma) <= eps * std::sqrt(alpha * beta) ||
            alpha * beta == 0.0) {
          continue;
        }
        converged = false;
        double zeta = (beta - alpha) / (2.0 * gamma);
        double t = (zeta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        double c = 1.0 / std::sqrt(1.0 + t * t);
        double s = c * t;
        for (int64_t r = 0; r < m; ++r) {
          double up = u.At(r, p), uq = u.At(r, q);
          u.At(r, p) = c * up - s * uq;
          u.At(r, q) = s * up + c * uq;
        }
        for (int64_t r = 0; r < n; ++r) {
          double vp = v.At(r, p), vq = v.At(r, q);
          v.At(r, p) = c * vp - s * vq;
          v.At(r, q) = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }

  // Extract singular values and normalize U's columns.
  SvdResult out;
  out.s.resize(static_cast<size_t>(n));
  for (int64_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (int64_t r = 0; r < m; ++r) norm += u.At(r, j) * u.At(r, j);
    norm = std::sqrt(norm);
    out.s[static_cast<size_t>(j)] = norm;
    if (norm > 0) {
      for (int64_t r = 0; r < m; ++r) u.At(r, j) /= norm;
    }
  }

  // Sort by singular value, descending.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return out.s[static_cast<size_t>(x)] > out.s[static_cast<size_t>(y)];
  });
  Matrix su(m, n), sv(n, n);
  std::vector<double> ss(static_cast<size_t>(n));
  for (int64_t j = 0; j < n; ++j) {
    int64_t src = order[static_cast<size_t>(j)];
    ss[static_cast<size_t>(j)] = out.s[static_cast<size_t>(src)];
    for (int64_t r = 0; r < m; ++r) su.At(r, j) = u.At(r, src);
    for (int64_t r = 0; r < n; ++r) sv.At(r, j) = v.At(r, src);
  }
  out.u = std::move(su);
  out.v = std::move(sv);
  out.s = std::move(ss);
  return out;
}

Result<EigenResult> SymmetricEigen(Matrix a, int max_sweeps) {
  const int64_t n = a.rows();
  if (a.cols() != n) return Status::Invalid("matrix is not square");
  Matrix v = Matrix::Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Off-diagonal Frobenius norm as the convergence measure.
    double off = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) off += a.At(i, j) * a.At(i, j);
    }
    if (off < 1e-20) break;

    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        double apq = a.At(p, q);
        if (std::fabs(apq) < 1e-18) continue;
        double app = a.At(p, p), aqq = a.At(q, q);
        double tau = (aqq - app) / (2.0 * apq);
        double t = (tau >= 0 ? 1.0 : -1.0) /
                   (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        double c = 1.0 / std::sqrt(1.0 + t * t);
        double s = c * t;
        // Apply the rotation J(p,q,θ) on both sides: A ← JᵀAJ.
        for (int64_t k = 0; k < n; ++k) {
          double akp = a.At(k, p), akq = a.At(k, q);
          a.At(k, p) = c * akp - s * akq;
          a.At(k, q) = s * akp + c * akq;
        }
        for (int64_t k = 0; k < n; ++k) {
          double apk = a.At(p, k), aqk = a.At(q, k);
          a.At(p, k) = c * apk - s * aqk;
          a.At(q, k) = s * apk + c * aqk;
        }
        for (int64_t k = 0; k < n; ++k) {
          double vkp = v.At(k, p), vkq = v.At(k, q);
          v.At(k, p) = c * vkp - s * vkq;
          v.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by eigenvalue, descending.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return a.At(x, x) > a.At(y, y);
  });
  EigenResult out;
  out.values.resize(static_cast<size_t>(n));
  out.vectors = Matrix(n, n);
  for (int64_t j = 0; j < n; ++j) {
    int64_t src = order[static_cast<size_t>(j)];
    out.values[static_cast<size_t>(j)] = a.At(src, src);
    for (int64_t r = 0; r < n; ++r) {
      out.vectors.At(r, j) = v.At(r, src);
    }
  }
  return out;
}

}  // namespace seagull
