#include "forecast/linalg.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "common/logging.h"
#include "forecast/scratch.h"

namespace seagull {

namespace {

std::atomic<KernelMode> g_kernel_mode{KernelMode::kFast};

/// Cache-block extents for MatMul: the reduction block keeps a row of B
/// resident while it is reused, the column block keeps the C row's
/// working set inside L1.
constexpr int64_t kBlockK = 64;
constexpr int64_t kBlockJ = 256;

}  // namespace

void SetKernelMode(KernelMode mode) {
  g_kernel_mode.store(mode, std::memory_order_relaxed);
}

KernelMode GetKernelMode() {
  return g_kernel_mode.load(std::memory_order_relaxed);
}

std::vector<double> Matrix::Column(int64_t c) const {
  std::vector<double> out(static_cast<size_t>(rows_));
  for (int64_t r = 0; r < rows_; ++r) out[static_cast<size_t>(r)] = At(r, c);
  return out;
}

Matrix Matrix::Identity(int64_t n) {
  Matrix m(n, n);
  for (int64_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Result<Matrix> MatMul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    return Status::Invalid("matmul shape mismatch");
  }
  const int64_t m = a.rows(), kk = a.cols(), n = b.cols();
  Matrix c(m, n);
  if (GetKernelMode() == KernelMode::kScalar) {
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t k = 0; k < kk; ++k) {
        double aik = a.At(i, k);
        if (aik == 0.0) continue;
        for (int64_t j = 0; j < n; ++j) {
          c.At(i, j) += aik * b.At(k, j);
        }
      }
    }
    return c;
  }
  // Blocked i-k-j with a 4-wide unrolled update of C's row. For any
  // (i, j) the contributions still arrive in ascending-k order, so this
  // path agrees bit-for-bit with the scalar loop above.
  for (int64_t i = 0; i < m; ++i) {
    const double* ai = a.Row(i);
    double* ci = c.Row(i);
    for (int64_t k0 = 0; k0 < kk; k0 += kBlockK) {
      const int64_t k1 = std::min(k0 + kBlockK, kk);
      for (int64_t j0 = 0; j0 < n; j0 += kBlockJ) {
        const int64_t j1 = std::min(j0 + kBlockJ, n);
        for (int64_t k = k0; k < k1; ++k) {
          const double aik = ai[k];
          if (aik == 0.0) continue;
          const double* bk = b.Row(k);
          int64_t j = j0;
          for (; j + 4 <= j1; j += 4) {
            ci[j] += aik * bk[j];
            ci[j + 1] += aik * bk[j + 1];
            ci[j + 2] += aik * bk[j + 2];
            ci[j + 3] += aik * bk[j + 3];
          }
          for (; j < j1; ++j) ci[j] += aik * bk[j];
        }
      }
    }
  }
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const double* ai = a.Row(i);
    for (int64_t j = 0; j < a.cols(); ++j) t.At(j, i) = ai[j];
  }
  return t;
}

Matrix AtA(const Matrix& a, double ridge) {
  const int64_t m = a.rows(), n = a.cols();
  Matrix c(n, n);
  if (GetKernelMode() == KernelMode::kScalar) {
    // Textbook column-pair dot products (strided walks down A).
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i; j < n; ++j) {
        double s = 0.0;
        for (int64_t r = 0; r < m; ++r) s += a.At(r, i) * a.At(r, j);
        c.At(i, j) = s;
        c.At(j, i) = s;
      }
    }
  } else {
    // SYRK-style rank-1 accumulation: each row of A is read
    // contiguously exactly once and updates the upper triangle.
    for (int64_t r = 0; r < m; ++r) {
      const double* ar = a.Row(r);
      for (int64_t i = 0; i < n; ++i) {
        const double v = ar[i];
        if (v == 0.0) continue;
        double* ci = c.Row(i);
        int64_t j = i;
        for (; j + 4 <= n; j += 4) {
          ci[j] += v * ar[j];
          ci[j + 1] += v * ar[j + 1];
          ci[j + 2] += v * ar[j + 2];
          ci[j + 3] += v * ar[j + 3];
        }
        for (; j < n; ++j) ci[j] += v * ar[j];
      }
    }
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < i; ++j) c.At(i, j) = c.At(j, i);
    }
  }
  for (int64_t i = 0; i < n; ++i) c.At(i, i) += ridge;
  return c;
}

std::vector<double> TransposeMatVec(const Matrix& a,
                                    const std::vector<double>& b) {
  const int64_t m = a.rows(), n = a.cols();
  std::vector<double> y(static_cast<size_t>(n), 0.0);
  if (GetKernelMode() == KernelMode::kScalar) {
    for (int64_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (int64_t r = 0; r < m; ++r) {
        s += a.At(r, i) * b[static_cast<size_t>(r)];
      }
      y[static_cast<size_t>(i)] = s;
    }
    return y;
  }
  // Row-by-row axpy: A is streamed contiguously once.
  for (int64_t r = 0; r < m; ++r) {
    const double br = b[static_cast<size_t>(r)];
    if (br == 0.0) continue;
    const double* ar = a.Row(r);
    double* yp = y.data();
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
      yp[i] += br * ar[i];
      yp[i + 1] += br * ar[i + 1];
      yp[i + 2] += br * ar[i + 2];
      yp[i + 3] += br * ar[i + 3];
    }
    for (; i < n; ++i) yp[i] += br * ar[i];
  }
  return y;
}

Result<std::vector<double>> MatVec(const Matrix& a,
                                   const std::vector<double>& x) {
  if (a.cols() != static_cast<int64_t>(x.size())) {
    return Status::Invalid("matvec shape mismatch");
  }
  const int64_t m = a.rows(), n = a.cols();
  std::vector<double> y(static_cast<size_t>(m), 0.0);
  if (GetKernelMode() == KernelMode::kScalar) {
    for (int64_t i = 0; i < m; ++i) {
      double sum = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        sum += a.At(i, j) * x[static_cast<size_t>(j)];
      }
      y[static_cast<size_t>(i)] = sum;
    }
    return y;
  }
  for (int64_t i = 0; i < m; ++i) {
    y[static_cast<size_t>(i)] = Dot(a.Row(i), x.data(), n);
  }
  return y;
}

void MatMulNT(const Matrix& a, const double* b, int64_t b_rows,
              Matrix* out) {
  const int64_t m = a.rows(), kk = a.cols();
  out->Resize(m, b_rows);
  if (GetKernelMode() == KernelMode::kScalar) {
    for (int64_t i = 0; i < m; ++i) {
      const double* ai = a.Row(i);
      double* ci = out->Row(i);
      for (int64_t j = 0; j < b_rows; ++j) {
        const double* bj = b + j * kk;
        double s = 0.0;
        for (int64_t k = 0; k < kk; ++k) s += ai[k] * bj[k];
        ci[j] = s;
      }
    }
    return;
  }
  // Each element is a contiguous-row dot; the 4-lane Dot keeps the
  // reduction order fixed per length.
  for (int64_t i = 0; i < m; ++i) {
    const double* ai = a.Row(i);
    double* ci = out->Row(i);
    for (int64_t j = 0; j < b_rows; ++j) {
      ci[j] = Dot(ai, b + j * kk, kk);
    }
  }
}

void MatMulNN(const Matrix& a, const double* b, int64_t b_cols,
              Matrix* out) {
  const int64_t m = a.rows(), kk = a.cols();
  out->Resize(m, b_cols);
  if (GetKernelMode() == KernelMode::kScalar) {
    for (int64_t i = 0; i < m; ++i) {
      const double* ai = a.Row(i);
      double* ci = out->Row(i);
      for (int64_t k = 0; k < kk; ++k) {
        const double aik = ai[k];
        if (aik == 0.0) continue;
        const double* bk = b + k * b_cols;
        for (int64_t j = 0; j < b_cols; ++j) ci[j] += aik * bk[j];
      }
    }
    return;
  }
  // Same i-k-j kernel as MatMul: ascending-k contributions per element.
  for (int64_t i = 0; i < m; ++i) {
    const double* ai = a.Row(i);
    double* ci = out->Row(i);
    for (int64_t k = 0; k < kk; ++k) {
      const double aik = ai[k];
      if (aik == 0.0) continue;
      const double* bk = b + k * b_cols;
      int64_t j = 0;
      for (; j + 4 <= b_cols; j += 4) {
        ci[j] += aik * bk[j];
        ci[j + 1] += aik * bk[j + 1];
        ci[j + 2] += aik * bk[j + 2];
        ci[j + 3] += aik * bk[j + 3];
      }
      for (; j < b_cols; ++j) ci[j] += aik * bk[j];
    }
  }
}

void MatMulTN(const Matrix& a, const Matrix& b, Matrix* out) {
  const int64_t m = a.rows(), p = a.cols(), q = b.cols();
  out->Resize(p, q);
  if (GetKernelMode() == KernelMode::kScalar) {
    for (int64_t i = 0; i < p; ++i) {
      double* ci = out->Row(i);
      for (int64_t j = 0; j < q; ++j) {
        double s = 0.0;
        for (int64_t r = 0; r < m; ++r) s += a.At(r, i) * b.At(r, j);
        ci[j] = s;
      }
    }
    return;
  }
  // Rank-1 row-pair accumulation: both inputs stream contiguously once;
  // every output element still sums in ascending sample order.
  for (int64_t r = 0; r < m; ++r) {
    const double* ar = a.Row(r);
    const double* br = b.Row(r);
    for (int64_t i = 0; i < p; ++i) {
      const double v = ar[i];
      if (v == 0.0) continue;
      double* ci = out->Row(i);
      int64_t j = 0;
      for (; j + 4 <= q; j += 4) {
        ci[j] += v * br[j];
        ci[j + 1] += v * br[j + 1];
        ci[j + 2] += v * br[j + 2];
        ci[j + 3] += v * br[j + 3];
      }
      for (; j < q; ++j) ci[j] += v * br[j];
    }
  }
}

double Dot(const double* a, const double* b, int64_t n) {
  if (GetKernelMode() == KernelMode::kScalar) {
    double sum = 0.0;
    for (int64_t i = 0; i < n; ++i) sum += a[i] * b[i];
    return sum;
  }
  // Four fixed lanes with a fixed combine order: deterministic for a
  // given length regardless of caller or thread.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += a[i] * b[i];
  return ((s0 + s1) + (s2 + s3)) + tail;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) {
    // Checked precondition: the old behaviour silently truncated to the
    // shorter vector, which turns shape bugs into quiet wrong answers.
    SEAGULL_LOG_ERROR("Dot() shape mismatch: %zu vs %zu elements",
                      a.size(), b.size());
    std::abort();
  }
  return Dot(a.data(), b.data(), static_cast<int64_t>(a.size()));
}

void BuildLagGram(const double* x, int64_t n, int64_t L, Matrix* out) {
  out->Resize(L, L);
  const int64_t k = n - L + 1;
  if (GetKernelMode() == KernelMode::kScalar) {
    // Reference: materialized trajectory-matrix product, O(k·L²).
    for (int64_t i = 0; i < k; ++i) {
      for (int64_t a = 0; a < L; ++a) {
        const double xa = x[i + a];
        if (xa == 0.0) continue;
        double* row = out->Row(a);
        for (int64_t b = a; b < L; ++b) row[b] += xa * x[i + b];
      }
    }
  } else {
    // Hankel structure: C[a][a+d] = Σ_{t=a}^{a+k-1} x[t]·x[t+d] — one
    // prefix-sum pass over the lag-d products yields the whole d-th
    // diagonal, O(n·L) overall.
    std::vector<double>& prefix = KernelScratch::Local().Vec(
        kscratch::kLinalgGramPrefix, static_cast<size_t>(n) + 1);
    for (int64_t d = 0; d < L; ++d) {
      const int64_t products = n - d;
      prefix[0] = 0.0;
      double acc = 0.0;
      for (int64_t t = 0; t < products; ++t) {
        acc += x[t] * x[t + d];
        prefix[static_cast<size_t>(t) + 1] = acc;
      }
      for (int64_t a = 0; a + d < L; ++a) {
        out->At(a, a + d) =
            prefix[static_cast<size_t>(a + k)] - prefix[static_cast<size_t>(a)];
      }
    }
  }
  for (int64_t a = 0; a < L; ++a) {
    for (int64_t b = 0; b < a; ++b) out->At(a, b) = out->At(b, a);
  }
}

Result<std::vector<double>> CholeskySolve(Matrix a, std::vector<double> b) {
  const int64_t n = a.rows();
  if (a.cols() != n || static_cast<int64_t>(b.size()) != n) {
    return Status::Invalid("cholesky shape mismatch");
  }
  // Factor A = L Lᵀ in the lower triangle of `a`. Row-pointer walks;
  // the reduction order matches the textbook loop element for element.
  for (int64_t j = 0; j < n; ++j) {
    double* aj = a.Row(j);
    double d = aj[j];
    for (int64_t k = 0; k < j; ++k) d -= aj[k] * aj[k];
    if (d <= 0.0) {
      return Status::Invalid("matrix is not positive definite");
    }
    d = std::sqrt(d);
    aj[j] = d;
    for (int64_t i = j + 1; i < n; ++i) {
      double* ai = a.Row(i);
      double s = ai[j];
      for (int64_t k = 0; k < j; ++k) s -= ai[k] * aj[k];
      ai[j] = s / d;
    }
  }
  // Forward solve L y = b.
  for (int64_t i = 0; i < n; ++i) {
    const double* ai = a.Row(i);
    double s = b[static_cast<size_t>(i)];
    for (int64_t k = 0; k < i; ++k) s -= ai[k] * b[static_cast<size_t>(k)];
    b[static_cast<size_t>(i)] = s / ai[i];
  }
  // Back solve Lᵀ x = y.
  for (int64_t i = n - 1; i >= 0; --i) {
    double s = b[static_cast<size_t>(i)];
    for (int64_t k = i + 1; k < n; ++k) {
      s -= a.At(k, i) * b[static_cast<size_t>(k)];
    }
    b[static_cast<size_t>(i)] = s / a.At(i, i);
  }
  return b;
}

Result<std::vector<double>> SolveLeastSquares(const Matrix& a,
                                              const std::vector<double>& b,
                                              double ridge) {
  if (a.rows() != static_cast<int64_t>(b.size())) {
    return Status::Invalid("least-squares shape mismatch");
  }
  Matrix ata = AtA(a, ridge);
  std::vector<double> atb = TransposeMatVec(a, b);
  auto solved = CholeskySolve(std::move(ata), std::move(atb));
  if (!solved.ok()) {
    return solved.status().WithContext("normal equations are singular");
  }
  return solved;
}

Result<SvdResult> JacobiSvd(const Matrix& a, int max_sweeps) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  if (m < n) return Status::Invalid("JacobiSvd requires rows >= cols");

  // Work on the transposed factors: row j of `ut` is column j of
  // U·diag(S), row j of `vt` is column j of V. Every column-pair
  // rotation then updates two contiguous rows.
  Matrix ut = Transpose(a);
  Matrix vt(n, n);
  for (int64_t i = 0; i < n; ++i) vt.At(i, i) = 1.0;

  const double eps = 1e-12;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        double* up = ut.Row(p);
        double* uq = ut.Row(q);
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (int64_t r = 0; r < m; ++r) {
          const double x = up[r], y = uq[r];
          alpha += x * x;
          beta += y * y;
          gamma += x * y;
        }
        if (std::fabs(gamma) <= eps * std::sqrt(alpha * beta) ||
            alpha * beta == 0.0) {
          continue;
        }
        converged = false;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (int64_t r = 0; r < m; ++r) {
          const double x = up[r], y = uq[r];
          up[r] = c * x - s * y;
          uq[r] = s * x + c * y;
        }
        double* vp = vt.Row(p);
        double* vq = vt.Row(q);
        for (int64_t r = 0; r < n; ++r) {
          const double x = vp[r], y = vq[r];
          vp[r] = c * x - s * y;
          vq[r] = s * x + c * y;
        }
      }
    }
    if (converged) break;  // early exit: a full sweep made no rotation
  }

  // Extract singular values and normalize U's columns (rows of ut).
  SvdResult out;
  out.s.resize(static_cast<size_t>(n));
  for (int64_t j = 0; j < n; ++j) {
    double* uj = ut.Row(j);
    double norm = 0.0;
    for (int64_t r = 0; r < m; ++r) norm += uj[r] * uj[r];
    norm = std::sqrt(norm);
    out.s[static_cast<size_t>(j)] = norm;
    if (norm > 0) {
      for (int64_t r = 0; r < m; ++r) uj[r] /= norm;
    }
  }

  // Sort by singular value, descending, and transpose back.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return out.s[static_cast<size_t>(x)] > out.s[static_cast<size_t>(y)];
  });
  Matrix su(m, n), sv(n, n);
  std::vector<double> ss(static_cast<size_t>(n));
  for (int64_t j = 0; j < n; ++j) {
    const int64_t src = order[static_cast<size_t>(j)];
    ss[static_cast<size_t>(j)] = out.s[static_cast<size_t>(src)];
    const double* uj = ut.Row(src);
    for (int64_t r = 0; r < m; ++r) su.At(r, j) = uj[r];
    const double* vj = vt.Row(src);
    for (int64_t r = 0; r < n; ++r) sv.At(r, j) = vj[r];
  }
  out.u = std::move(su);
  out.v = std::move(sv);
  out.s = std::move(ss);
  return out;
}

namespace {

/// Householder reduction of the symmetric n×n matrix `a` to tridiagonal
/// form (tred2): on return `d` holds the diagonal, `e[1..n-1]` the
/// sub-diagonal, and `a` is overwritten with the accumulated orthogonal
/// transform Q (column k is the k-th basis vector of the tridiagonal
/// frame).
void HouseholderTridiag(Matrix& a, int64_t n, double* d, double* e) {
  for (int64_t i = n - 1; i >= 1; --i) {
    const int64_t l = i - 1;
    double h = 0.0;
    if (l > 0) {
      double scale = 0.0;
      for (int64_t k = 0; k <= l; ++k) scale += std::fabs(a.At(i, k));
      if (scale == 0.0) {
        e[i] = a.At(i, l);
      } else {
        for (int64_t k = 0; k <= l; ++k) {
          a.At(i, k) /= scale;
          h += a.At(i, k) * a.At(i, k);
        }
        double f = a.At(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        a.At(i, l) = f - g;
        f = 0.0;
        for (int64_t j = 0; j <= l; ++j) {
          a.At(j, i) = a.At(i, j) / h;
          g = 0.0;
          for (int64_t k = 0; k <= j; ++k) g += a.At(j, k) * a.At(i, k);
          for (int64_t k = j + 1; k <= l; ++k) g += a.At(k, j) * a.At(i, k);
          e[j] = g / h;
          f += e[j] * a.At(i, j);
        }
        const double hh = f / (h + h);
        for (int64_t j = 0; j <= l; ++j) {
          f = a.At(i, j);
          g = e[j] - hh * f;
          e[j] = g;
          for (int64_t k = 0; k <= j; ++k) {
            a.At(j, k) -= f * e[k] + g * a.At(i, k);
          }
        }
      }
    } else {
      e[i] = a.At(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  // Accumulate the transform (d[i] still holds the Householder h as the
  // "was a reflection applied at step i" flag).
  for (int64_t i = 0; i < n; ++i) {
    const int64_t l = i - 1;
    if (d[i] != 0.0) {
      for (int64_t j = 0; j <= l; ++j) {
        double g = 0.0;
        for (int64_t k = 0; k <= l; ++k) g += a.At(i, k) * a.At(k, j);
        for (int64_t k = 0; k <= l; ++k) a.At(k, j) -= g * a.At(k, i);
      }
    }
    d[i] = a.At(i, i);
    a.At(i, i) = 1.0;
    for (int64_t j = 0; j <= l; ++j) {
      a.At(j, i) = 0.0;
      a.At(i, j) = 0.0;
    }
  }
}

/// Implicit-shift QL iteration on the tridiagonal (d, e) produced by
/// HouseholderTridiag (tqli). `zt` carries the transform transposed —
/// row k is eigenvector k — so each Givens rotation updates two
/// contiguous rows. Returns false if an eigenvalue fails to converge.
bool TridiagQl(double* d, double* e, int64_t n, Matrix& zt) {
  for (int64_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;
  for (int64_t l = 0; l < n; ++l) {
    int iter = 0;
    int64_t m;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        if (iter++ == 60) return false;
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + (g >= 0.0 ? r : -r));
        double s = 1.0, c = 1.0, p = 0.0;
        int64_t i = m - 1;
        for (; i >= l; --i) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            // Negligible rotation: deflate and restart the chase.
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          double* zi = zt.Row(i);
          double* zi1 = zt.Row(i + 1);
          for (int64_t k = 0; k < n; ++k) {
            f = zi1[k];
            zi1[k] = s * zi[k] + c * f;
            zi[k] = c * zi[k] - s * f;
          }
        }
        if (r == 0.0 && i >= l) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  return true;
}

/// Sorts eigenpairs descending by eigenvalue and writes the caller's
/// outputs (column j of `*vectors` = eigenvector j, taken from row j of
/// `vt`). `d` aliases `values`' storage, so `work` stages the unsorted
/// eigenvalues during the permutation.
Status SortEigenPairs(const double* d, const Matrix& vt, int64_t n,
                      std::vector<double>& work, Matrix* vectors,
                      std::vector<double>* values) {
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int64_t x, int64_t y) { return d[x] > d[y]; });
  for (int64_t i = 0; i < n; ++i) work[static_cast<size_t>(i)] = d[i];
  vectors->Resize(n, n);
  for (int64_t j = 0; j < n; ++j) {
    const int64_t src = order[static_cast<size_t>(j)];
    (*values)[static_cast<size_t>(j)] = work[static_cast<size_t>(src)];
    const double* vj = vt.Row(src);
    for (int64_t r = 0; r < n; ++r) {
      vectors->At(r, j) = vj[r];
    }
  }
  return Status::OK();
}

}  // namespace

Status SymmetricEigenInPlace(Matrix* a_ptr, Matrix* vectors,
                             std::vector<double>* values, int max_sweeps) {
  Matrix& a = *a_ptr;
  const int64_t n = a.rows();
  if (a.cols() != n) return Status::Invalid("matrix is not square");
  KernelScratch& scratch = KernelScratch::Local();
  // Row j of `vt` holds eigenvector j, so every rotation updates two
  // contiguous rows. The accumulator is linalg's own scratch slot —
  // callers passing scratch-owned outputs get a zero-alloc solve.
  Matrix& vt = scratch.Mat(kscratch::kMatLinalgEigenVt, n, n);
  values->resize(static_cast<size_t>(n));
  double* d = values->data();
  std::vector<double>& work =
      scratch.Vec(kscratch::kLinalgEigenOff, static_cast<size_t>(n));

  const bool fast = GetKernelMode() == KernelMode::kFast;
  if (fast) {
    // Householder tridiagonalization + implicit-shift QL: ~an order of
    // magnitude fewer flops than the cyclic Jacobi reference below,
    // which needs ~9 full O(n³) sweeps to converge on load-scale Grams.
    HouseholderTridiag(a, n, d, work.data());
    // The accumulated transform sits column-wise in `a`; transpose into
    // `vt` so the QL rotations walk contiguous rows.
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) vt.At(j, i) = a.At(i, j);
    }
    if (!TridiagQl(d, work.data(), n, vt)) {
      return Status::Internal("QL eigensolver failed to converge");
    }
    return SortEigenPairs(d, vt, n, work, vectors, values);
  }

  // Scalar reference: cyclic Jacobi with the historical absolute
  // cutoffs — the bit-exact "before" implementation the benches and
  // property tests compare against.
  for (int64_t i = 0; i < n; ++i) vt.At(i, i) = 1.0;
  const double off_exit = 1e-20;
  const double rot_skip = 1e-18;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Off-diagonal Frobenius norm as the convergence measure.
    double off = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const double* ai = a.Row(i);
      for (int64_t j = i + 1; j < n; ++j) off += ai[j] * ai[j];
    }
    if (off <= off_exit) break;

    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        const double apq = a.At(p, q);
        if (std::fabs(apq) < rot_skip) continue;
        const double app = a.At(p, p), aqq = a.At(q, q);
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0 ? 1.0 : -1.0) /
                         (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        // Apply the rotation J(p,q,θ) on both sides: A ← JᵀAJ. Column
        // update first (strided), then the two contiguous row updates —
        // same sequence as the textbook loop.
        for (int64_t k = 0; k < n; ++k) {
          double* ak = a.Row(k);
          const double akp = ak[p], akq = ak[q];
          ak[p] = c * akp - s * akq;
          ak[q] = s * akp + c * akq;
        }
        double* ap = a.Row(p);
        double* aq = a.Row(q);
        for (int64_t k = 0; k < n; ++k) {
          const double apk = ap[k], aqk = aq[k];
          ap[k] = c * apk - s * aqk;
          aq[k] = s * apk + c * aqk;
        }
        double* vp = vt.Row(p);
        double* vq = vt.Row(q);
        for (int64_t k = 0; k < n; ++k) {
          const double vpk = vp[k], vqk = vq[k];
          vp[k] = c * vpk - s * vqk;
          vq[k] = s * vpk + c * vqk;
        }
      }
    }
  }

  // The converged eigenvalues sit on the diagonal.
  for (int64_t i = 0; i < n; ++i) d[i] = a.At(i, i);
  return SortEigenPairs(d, vt, n, work, vectors, values);
}

Result<EigenResult> SymmetricEigen(Matrix a, int max_sweeps) {
  EigenResult out;
  SEAGULL_RETURN_NOT_OK(
      SymmetricEigenInPlace(&a, &out.vectors, &out.values, max_sweeps));
  return out;
}

}  // namespace seagull
