/// \file routed.h
/// \brief Class-routed ensemble — the per-class alternative of §5.2/§5.4.
///
/// §5.2 assigns a natural model to each server class (previous-week
/// average for stable, previous day for daily patterns, previous
/// equivalent day for weekly patterns, a trained model for the rest);
/// §5.4 rejects maintaining "a different model per each class" in favor
/// of one fleet-wide heuristic. This model implements the rejected
/// design so the trade-off is measurable: `Fit` classifies the training
/// series with the §3.2 metrics and delegates to the matching family.

#pragma once

#include <memory>

#include "forecast/model.h"
#include "metrics/classify.h"

namespace seagull {

/// \brief Router configuration: which family serves which class.
struct RoutedOptions {
  std::string stable_family = "persistent_week_avg";
  std::string daily_family = "persistent_prev_day";
  std::string weekly_family = "persistent_prev_eq_day";
  std::string unstable_family = "ssa";
};

/// \brief Classify-then-delegate forecaster.
///
/// Note: with the §5.3.1 protocol (one week of training data) the weekly
/// test has no day-7 lag to compare against, so weekly-pattern servers
/// route to the unstable family; give `Fit` two or more weeks to enable
/// the weekly route.
class RoutedForecast final : public ForecastModel {
 public:
  explicit RoutedForecast(RoutedOptions options = {})
      : options_(std::move(options)) {}

  std::string name() const override { return "routed"; }
  Status Fit(const LoadSeries& train) override;
  Result<LoadSeries> Forecast(const LoadSeries& recent, MinuteStamp start,
                              int64_t horizon_minutes) const override;
  Result<Json> Serialize() const override;
  Status Deserialize(const Json& doc) override;

  /// Class the last `Fit` routed on; kNoPattern before fitting.
  ServerClass routed_class() const { return routed_class_; }
  /// Family the delegate belongs to; empty before fitting.
  std::string delegate_family() const;

 private:
  const std::string& FamilyFor(ServerClass cls) const;

  RoutedOptions options_;
  ServerClass routed_class_ = ServerClass::kNoPattern;
  std::unique_ptr<ForecastModel> delegate_;
};

}  // namespace seagull
