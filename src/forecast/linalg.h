/// \file linalg.h
/// \brief Dense linear-algebra kernel engine for the forecast models.
///
/// SSA needs the eigendecomposition of its lag-covariance Gram; the
/// additive model and ARIMA need least-squares solves; the feed-forward
/// network needs matrix products. Per-server model fitting runs tens of
/// thousands of times per pipeline pass, so these kernels are the
/// compute floor of the whole training fan-out.
///
/// Layout contract: `Matrix` is guaranteed-contiguous row-major doubles
/// (one flat allocation, row `r` starting at `Row(r)`), so kernels walk
/// raw pointers instead of going through bounds arithmetic per element.
///
/// Determinism contract: every kernel reduces in one fixed order that
/// does not depend on thread count, scheduling, or input values — the
/// fleet engine's byte-identical `--jobs 1` vs `--jobs N` guarantee
/// (tests/fleet_determinism_test.cc) extends through every trained
/// model. The blocked/unrolled fast paths may round differently from
/// the scalar reference paths (different — but still fixed —
/// association), which is why the mode switch below exists: comparisons
/// are only ever made within one mode. See DESIGN.md §"Forecast kernel
/// engine".

#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace seagull {

class KernelScratch;

/// \brief Selects between the tuned kernels and the textbook scalar
/// reference implementations.
///
/// `kFast` (default) enables the O(n·L) Hankel Gram builder, the
/// tridiagonal (Householder + QL) eigensolver, and the blocked/unrolled
/// reductions. `kScalar` reproduces the original textbook loops — kept
/// callable so benchmarks can emit before/after rows and property tests
/// can cross-check the fast kernels against them.
enum class KernelMode { kFast, kScalar };

/// Sets the process-wide kernel mode. Not synchronized with in-flight
/// kernels: flip it only from single-threaded sections (bench setup,
/// test fixtures), never mid-fan-out.
void SetKernelMode(KernelMode mode);
KernelMode GetKernelMode();

/// RAII guard: scalar reference kernels for the enclosed scope.
class ScopedScalarKernels {
 public:
  ScopedScalarKernels() : saved_(GetKernelMode()) {
    SetKernelMode(KernelMode::kScalar);
  }
  ~ScopedScalarKernels() { SetKernelMode(saved_); }
  ScopedScalarKernels(const ScopedScalarKernels&) = delete;
  ScopedScalarKernels& operator=(const ScopedScalarKernels&) = delete;

 private:
  KernelMode saved_;
};

/// \brief Row-major dense matrix of doubles in one contiguous
/// allocation.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), 0.0) {}

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  /// Raw pointer to the start of row `r` — rows are contiguous and
  /// consecutive, so `Row(0)` addresses the whole matrix.
  double* Row(int64_t r) { return data_.data() + r * cols_; }
  const double* Row(int64_t r) const { return data_.data() + r * cols_; }

  double& At(int64_t r, int64_t c) {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  double At(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  /// Reshapes to rows×cols and zero-fills. Keeps the existing heap
  /// allocation when capacity suffices — the scratch-arena reuse path.
  void Resize(int64_t rows, int64_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<size_t>(rows * cols), 0.0);
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Extracts column `c` as a vector.
  std::vector<double> Column(int64_t c) const;

  static Matrix Identity(int64_t n);

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B. Cache-blocked over the reduction and output columns with a
/// 4-way-unrolled inner kernel; the per-element accumulation order (k
/// ascending) matches the scalar path exactly, so both modes agree
/// bit-for-bit.
Result<Matrix> MatMul(const Matrix& a, const Matrix& b);

/// Aᵀ.
Matrix Transpose(const Matrix& a);

/// C = AᵀA + ridge·I (SYRK-style: walks rows of A contiguously and
/// fills the upper triangle, then mirrors). The Gram step of
/// `SolveLeastSquares`.
Matrix AtA(const Matrix& a, double ridge = 0.0);

/// y = Aᵀ b — the normal-equations right-hand side, accumulated row by
/// row so A is read contiguously exactly once.
std::vector<double> TransposeMatVec(const Matrix& a,
                                    const std::vector<double>& b);

/// y = A * x.
Result<std::vector<double>> MatVec(const Matrix& a,
                                   const std::vector<double>& x);

/// C = A · Bᵀ where `b` points at `b_rows` contiguous rows of
/// `a.cols()` doubles (a row-major b_rows×a.cols() block). Every output
/// element is one dot of two contiguous rows — the natural layout for
/// the feed-forward forward pass, whose weight matrices are stored
/// row-major per output unit. `out` is resized (scratch-arena
/// friendly); the reduction runs in ascending-k order in both modes.
void MatMulNT(const Matrix& a, const double* b, int64_t b_rows,
              Matrix* out);

/// C = A · B where `b` points at a row-major a.cols()×b_cols block.
/// Raw-pointer twin of `MatMul` for operands living in flat parameter
/// vectors; same blocked kernel, same ascending-k accumulation order.
void MatMulNN(const Matrix& a, const double* b, int64_t b_cols,
              Matrix* out);

/// C = Aᵀ · B for equal-row-count operands (a: m×p, b: m×q → p×q),
/// accumulated row pair by row pair so both inputs stream contiguously
/// exactly once — the gradient contraction of batched training
/// (gW = activationsᵀ · deltas). Contributions arrive in ascending row
/// order, matching the sample order of the per-sample reference loop.
void MatMulTN(const Matrix& a, const Matrix& b, Matrix* out);

/// Dot product over equal-length vectors (4 fixed lanes, deterministic
/// combine). Checked precondition: aborts if the sizes differ — the old
/// behaviour of silently truncating to the shorter vector hid shape
/// bugs.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Raw-pointer dot over `n` doubles, same fixed 4-lane reduction.
double Dot(const double* a, const double* b, int64_t n);

/// \brief Builds the L×L lag-covariance Gram C = AᵀA of the Hankel
/// trajectory matrix A[i][j] = x[i+j] (i in [0, n-L], j in [0, L)).
///
/// Fast mode exploits the Hankel structure: C[a][b] depends only on the
/// lag d = b−a and the offset a, so one prefix-sum pass over the
/// products x[t]·x[t+d] per lag yields a whole diagonal — O(n·L) total
/// instead of the O((n−L)·L²) triple loop, which remains the scalar
/// reference. `out` is resized to L×L (scratch-arena friendly).
void BuildLagGram(const double* x, int64_t n, int64_t L, Matrix* out);

/// Solves the symmetric positive-definite system A x = b in place via
/// Cholesky. Fails if A is not SPD (within tolerance).
Result<std::vector<double>> CholeskySolve(Matrix a, std::vector<double> b);

/// Solves min ‖A x − b‖² + ridge‖x‖² via the normal equations
/// (AtA + TransposeMatVec + CholeskySolve).
Result<std::vector<double>> SolveLeastSquares(const Matrix& a,
                                              const std::vector<double>& b,
                                              double ridge = 0.0);

/// \brief Thin SVD result: A = U diag(S) Vᵀ with singular values in
/// non-increasing order.
struct SvdResult {
  Matrix u;               ///< m×n, orthonormal columns
  std::vector<double> s;  ///< n singular values, descending
  Matrix v;               ///< n×n orthogonal
};

/// One-sided Jacobi SVD of an m×n matrix with m >= n. Internally
/// operates on the transposed factors so every column-pair rotation
/// walks two contiguous rows. Iterates until column pairs are
/// orthogonal to machine-precision scale or the sweep limit is hit; a
/// sweep with no rotations exits early.
Result<SvdResult> JacobiSvd(const Matrix& a, int max_sweeps = 60);

/// \brief Eigendecomposition of a symmetric matrix: A = V diag(λ) Vᵀ
/// with eigenvalues in non-increasing order.
struct EigenResult {
  Matrix vectors;             ///< n×n, column j is the j-th eigenvector
  std::vector<double> values; ///< n eigenvalues, descending
};

/// Eigendecomposition of a symmetric n×n matrix. Used by SSA, which
/// only needs the lag-space (right) singular vectors — the eigenvectors
/// of AᵀA. Fast mode runs Householder tridiagonalization followed by
/// implicit-shift QL (an order of magnitude fewer flops than Jacobi at
/// SSA's default L=72); the scalar reference is the original cyclic
/// Jacobi iteration, which `max_sweeps` bounds.
Result<EigenResult> SymmetricEigen(Matrix a, int max_sweeps = 100);

/// In-place variant for scratch-driven fit loops: consumes `*a`
/// (overwritten by the rotations), resizes `*vectors` to n×n and
/// `*values` to n. The rotation accumulator lives in the calling
/// thread's scratch arena, so passing scratch-owned outputs makes the
/// whole decomposition heap-allocation-free at steady state.
Status SymmetricEigenInPlace(Matrix* a, Matrix* vectors,
                             std::vector<double>* values,
                             int max_sweeps = 100);

}  // namespace seagull
