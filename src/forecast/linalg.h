/// \file linalg.h
/// \brief Small dense linear algebra kernel for the forecast models.
///
/// SSA needs an SVD of the trajectory matrix; the additive model and
/// ARIMA need least-squares solves; the feed-forward network needs
/// matrix products. Everything here is straightforward row-major double
/// math — model inputs are at most a few thousand samples, so clarity
/// beats blocking.

#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace seagull {

/// \brief Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), 0.0) {}

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  double& At(int64_t r, int64_t c) {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  double At(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Extracts column `c` as a vector.
  std::vector<double> Column(int64_t c) const;

  static Matrix Identity(int64_t n);

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B.
Result<Matrix> MatMul(const Matrix& a, const Matrix& b);

/// Aᵀ.
Matrix Transpose(const Matrix& a);

/// y = A * x.
Result<std::vector<double>> MatVec(const Matrix& a,
                                   const std::vector<double>& x);

/// Dot product.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Solves the symmetric positive-definite system A x = b in place via
/// Cholesky. Fails if A is not SPD (within tolerance).
Result<std::vector<double>> CholeskySolve(Matrix a, std::vector<double> b);

/// Solves min ‖A x − b‖² + ridge‖x‖² via the normal equations.
Result<std::vector<double>> SolveLeastSquares(const Matrix& a,
                                              const std::vector<double>& b,
                                              double ridge = 0.0);

/// \brief Thin SVD result: A = U diag(S) Vᵀ with singular values in
/// non-increasing order.
struct SvdResult {
  Matrix u;               ///< m×n, orthonormal columns
  std::vector<double> s;  ///< n singular values, descending
  Matrix v;               ///< n×n orthogonal
};

/// One-sided Jacobi SVD of an m×n matrix with m >= n. Iterates until
/// column pairs are orthogonal to machine-precision scale or the sweep
/// limit is hit.
Result<SvdResult> JacobiSvd(const Matrix& a, int max_sweeps = 60);

/// \brief Eigendecomposition of a symmetric matrix: A = V diag(λ) Vᵀ
/// with eigenvalues in non-increasing order.
struct EigenResult {
  Matrix vectors;             ///< n×n, column j is the j-th eigenvector
  std::vector<double> values; ///< n eigenvalues, descending
};

/// Cyclic Jacobi eigendecomposition of a symmetric n×n matrix. Used by
/// SSA, which only needs the lag-space (right) singular vectors — the
/// eigenvectors of AᵀA — making fitting O(K·L² + L³) instead of a full
/// SVD of the K×L trajectory matrix.
Result<EigenResult> SymmetricEigen(Matrix a, int max_sweeps = 100);

}  // namespace seagull
