/// \file scratch.h
/// \brief Thread-local scratch arena for the forecast kernel engine.
///
/// The training module fans one `Fit()` per server out across the
/// thread pool; before this arena existed every fit re-allocated its
/// trajectory buffers, Gram matrix, residual workspace, and gradient
/// accumulators from the heap — at fleet scale that allocation churn,
/// not arithmetic, dominated the profile. `KernelScratch::Local()`
/// returns one arena per thread whose buffers keep their capacity
/// between fits, so a pool worker sweeping thousands of servers
/// allocates each buffer once and then only ever re-slices it.
///
/// Lifetime rules (see DESIGN.md §"Forecast kernel engine"):
///  - A slot's contents are valid only between acquiring it and the
///    next acquisition of the same slot on the same thread. Buffers
///    never escape: anything a model keeps (coefficients, weights) is
///    copied/moved into the model's own members.
///  - Slots are keyed by the constants below; each consumer owns a
///    disjoint range, so nested use (a model fit calling a linalg
///    kernel) cannot alias.
///  - `Fit()` runs on exactly one thread per model instance (model.h
///    contract) and const `Forecast()` paths only touch their own
///    thread's arena, so no synchronization is needed — and, because
///    the arena only recycles storage, it cannot affect results: byte
///    determinism across `--jobs` is preserved by construction.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "forecast/linalg.h"

namespace seagull {

/// Slot keys. Each consumer gets its own block; keep ranges disjoint.
namespace kscratch {
// linalg-internal workspace
inline constexpr int kLinalgGramPrefix = 0;
inline constexpr int kLinalgEigenOff = 1;
// SSA
inline constexpr int kSsaSeries = 4;
inline constexpr int kSsaWindow = 5;
inline constexpr int kSsaEigVals = 6;
// ARIMA
inline constexpr int kArimaSeries = 8;
inline constexpr int kArimaDiff = 9;
inline constexpr int kArimaResiduals = 10;
inline constexpr int kArimaSens = 11;       // rolling ∂e/∂θ window
// Feed-forward network
inline constexpr int kFfGradW1 = 12;
inline constexpr int kFfGradB1 = 13;
inline constexpr int kFfGradW2 = 14;
inline constexpr int kFfGradB2 = 15;
inline constexpr int kFfAdamM = 16;
inline constexpr int kFfAdamV = 17;
inline constexpr int kFfActivations = 18;
inline constexpr int kFfParams = 19;        // concatenated [w1|b1|w2|b2]
// ARIMA (optimizer state, fast path)
inline constexpr int kArimaGrad = 20;
inline constexpr int kArimaAdam = 21;       // [m | v], 2·np doubles
// Additive model
inline constexpr int kAddTargets = 22;
inline constexpr int kAddGrad = 23;
inline constexpr int kAddFeatures = 24;
inline constexpr int kAddRhs = 25;          // b = Aᵀy (fast Gram path)
inline constexpr int kAddGramCoef = 26;     // G·coef per iteration
// Matrix slots
inline constexpr int kMatSsaGram = 0;
inline constexpr int kMatFfInputs = 1;
inline constexpr int kMatFfTargets = 2;
inline constexpr int kMatAddDesign = 3;
inline constexpr int kMatSsaEigVec = 4;
inline constexpr int kMatLinalgEigenVt = 5;
inline constexpr int kMatAddGram = 6;       // G = AᵀA of the design
inline constexpr int kMatFfHidden = 7;      // batched pre-activations
inline constexpr int kMatFfOut = 8;         // batched outputs / deltas
inline constexpr int kMatFfDh = 9;          // batched hidden deltas
inline constexpr int kMatFfRelu = 10;       // batched ReLU activations
inline constexpr int kMatFfGradW1 = 11;     // gW1 = dHᵀ·X (row-major w1)
inline constexpr int kMatFfGradW2 = 12;     // gW2 = dYᵀ·H (row-major w2)
}  // namespace kscratch

/// \brief Per-thread pool of capacity-retaining buffers.
class KernelScratch {
 public:
  static constexpr int kVecSlots = 28;
  static constexpr int kMatSlots = 14;

  /// The calling thread's arena.
  static KernelScratch& Local();

  /// Returns slot `slot` resized to `n` elements. Contents are
  /// unspecified (whatever the previous use left behind) — use only
  /// when every element is written before being read.
  std::vector<double>& Vec(int slot, size_t n);

  /// Returns slot `slot` holding `n` zeros.
  std::vector<double>& VecZero(int slot, size_t n);

  /// Returns matrix slot `slot` resized to rows×cols and zero-filled.
  Matrix& Mat(int slot, int64_t rows, int64_t cols);

  /// Total bytes currently retained across all slots (introspection for
  /// tests; the arena never shrinks on its own).
  size_t RetainedBytes() const;

  /// Drops every buffer back to zero capacity.
  void Release();

 private:
  std::vector<double> vecs_[kVecSlots];
  Matrix mats_[kMatSlots];
};

}  // namespace seagull
