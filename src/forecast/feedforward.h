/// \file feedforward.h
/// \brief Feed-forward neural forecaster — the GluonTS analog.
///
/// The paper trains GluonTS's "simple feed forward estimator" (§5.1).
/// This is the same architecture built on the in-repo math: the last day
/// of load, average-pooled to a coarse context vector, goes through a
/// ReLU hidden layer that directly emits the next day (direct
/// multi-horizon), trained with Adam on sliding windows of the history.

#pragma once

#include "common/random.h"
#include "forecast/model.h"

namespace seagull {

class BatchTrainer;

/// \brief Network and training hyper-parameters.
struct FeedForwardOptions {
  /// Context and prediction lengths in samples of the *pooled* grid.
  int64_t pooled_per_day = 24;
  /// Hidden layer width.
  int64_t hidden = 32;
  /// Adam epochs over the sliding-window training set.
  int64_t epochs = 160;
  /// Sliding-window stride over the history, in raw samples.
  int64_t stride = 12;
  double learning_rate = 0.005;
  uint64_t seed = 7;
};

/// \brief One-hidden-layer direct multi-horizon forecaster.
class FeedForwardForecast final : public ForecastModel {
 public:
  explicit FeedForwardForecast(FeedForwardOptions options = {})
      : options_(options) {}

  std::string name() const override { return "feedforward"; }
  Status Fit(const LoadSeries& train) override;
  Result<LoadSeries> Forecast(const LoadSeries& recent, MinuteStamp start,
                              int64_t horizon_minutes) const override;
  Result<Json> Serialize() const override;
  Status Deserialize(const Json& doc) override;

  /// Final training loss (mean squared error on normalized load).
  double train_loss() const { return train_loss_; }

 private:
  /// BatchTrainer owns structure-of-arrays parameter/Adam arenas across
  /// a shape group and drives FitCore/AdoptParams per server.
  friend class BatchTrainer;

  /// Total parameter count |w1|+|b1|+|w2|+|b2| for the configured dims.
  int64_t NumParams() const;
  /// Trains into caller-owned storage: `params` is a NumParams() block
  /// laid out [w1|b1|w2|b2]; `mom`/`vel` are same-size zero-initialized
  /// Adam state. Builds the pooled window pairs, He-initializes the
  /// block (Rng(seed), same draw order as always), and runs the epoch
  /// loop — per-sample scalar reference or batched-matmul fast path
  /// depending on the kernel mode. Sets interval_/train_loss_ but not
  /// the weight members; pair with AdoptParams.
  Status FitCore(const LoadSeries& filled, double* params, double* mom,
                 double* vel);
  /// Unpacks a FitCore-trained [w1|b1|w2|b2] block into the weight
  /// members and marks the model fitted.
  void AdoptParams(const double* params);

  /// Forward pass on one pooled, normalized context vector.
  std::vector<double> Apply(const std::vector<double>& input) const;

  FeedForwardOptions options_;
  bool fitted_ = false;
  int64_t interval_ = kServerIntervalMinutes;
  double scale_ = 100.0;  // load normalization divisor
  // Parameters: w1 [hidden x in], b1 [hidden], w2 [out x hidden], b2 [out].
  std::vector<double> w1_, b1_, w2_, b2_;
  double train_loss_ = 0.0;
};

}  // namespace seagull
