/// \file persistent.h
/// \brief Persistent-forecast heuristics (§5.1).
///
/// "Persistent Forecast refers to replicating previously seen load per
/// server as the forecast of the load for this server." Three variants:
/// previous day, previous equivalent day (same day last week), and the
/// previous-week average (a flat line at the weekly mean). These have no
/// parameters; `Fit` is a no-op and `Forecast` reads from the recent
/// telemetry handed in.

#pragma once

#include "forecast/model.h"

namespace seagull {

/// \brief Which slice of history a persistent forecast replicates.
enum class PersistentVariant : int8_t {
  /// Yesterday's load becomes today's forecast (deployed to production,
  /// §5.4 — captures daily patterns and stable load).
  kPreviousDay = 0,
  /// Load of the same weekday last week (captures weekly patterns).
  kPreviousEquivalentDay = 1,
  /// Flat line at the previous week's mean load (captures stable load).
  kPreviousWeekAverage = 2,
};

const char* PersistentVariantName(PersistentVariant v);

/// \brief The persistent-forecast model.
class PersistentForecast final : public ForecastModel {
 public:
  explicit PersistentForecast(
      PersistentVariant variant = PersistentVariant::kPreviousDay)
      : variant_(variant) {}

  std::string name() const override;
  bool requires_training() const override { return false; }
  Status Fit(const LoadSeries& train) override;
  Result<LoadSeries> Forecast(const LoadSeries& recent, MinuteStamp start,
                              int64_t horizon_minutes) const override;
  Result<Json> Serialize() const override;
  Status Deserialize(const Json& doc) override;

  PersistentVariant variant() const { return variant_; }

 private:
  PersistentVariant variant_;
};

}  // namespace seagull
