/// \file ssa.h
/// \brief Singular Spectrum Analysis forecaster — the NimbusML analog.
///
/// NimbusML's SsaForecaster (§5.1) decomposes the series into a trajectory
/// matrix, keeps the dominant singular triples, and forecasts with the
/// linear recurrence those components satisfy. This is the textbook
/// recurrent-SSA algorithm implemented on the in-repo Jacobi SVD.

#pragma once

#include "forecast/model.h"

namespace seagull {

/// \brief SSA hyper-parameters.
struct SsaOptions {
  /// Embedding window length in samples (L). Defaults to six hours of
  /// 5-minute telemetry; must satisfy 2L-1 <= train length.
  int64_t window = 72;
  /// Keep the smallest set of leading components whose energy reaches
  /// this fraction of the total.
  double energy_threshold = 0.95;
  /// Hard cap on retained components.
  int64_t max_components = 24;
};

/// \brief Recurrent-SSA forecast model.
class SsaForecast final : public ForecastModel {
 public:
  explicit SsaForecast(SsaOptions options = {}) : options_(options) {}

  std::string name() const override { return "ssa"; }
  Status Fit(const LoadSeries& train) override;
  Result<LoadSeries> Forecast(const LoadSeries& recent, MinuteStamp start,
                              int64_t horizon_minutes) const override;
  Result<Json> Serialize() const override;
  Status Deserialize(const Json& doc) override;

  /// Number of components retained by the last `Fit`.
  int64_t rank() const { return rank_; }

 private:
  SsaOptions options_;
  bool fitted_ = false;
  double mean_ = 0.0;
  int64_t interval_ = kServerIntervalMinutes;
  /// Linear recurrence coefficients, length L-1: x_t = Σ r_j x_{t-L+1+j}.
  std::vector<double> lrf_;
  int64_t rank_ = 0;
};

}  // namespace seagull
