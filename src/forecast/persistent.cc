#include "forecast/persistent.h"

#include "timeseries/stats.h"

namespace seagull {

const char* PersistentVariantName(PersistentVariant v) {
  switch (v) {
    case PersistentVariant::kPreviousDay:
      return "persistent_prev_day";
    case PersistentVariant::kPreviousEquivalentDay:
      return "persistent_prev_eq_day";
    case PersistentVariant::kPreviousWeekAverage:
      return "persistent_week_avg";
  }
  return "persistent_unknown";
}

std::string PersistentForecast::name() const {
  return PersistentVariantName(variant_);
}

Status PersistentForecast::Fit(const LoadSeries& train) {
  (void)train;  // No parameters: "persistent forecast does not require
                // training" (§5.3.3).
  return Status::OK();
}

Result<LoadSeries> PersistentForecast::Forecast(
    const LoadSeries& recent, MinuteStamp start,
    int64_t horizon_minutes) const {
  if (recent.empty()) {
    return Status::FailedPrecondition("persistent forecast needs history");
  }
  const int64_t interval = recent.interval_minutes();
  if (start % interval != 0 || horizon_minutes % interval != 0) {
    return Status::Invalid("forecast range must be grid-aligned");
  }
  switch (variant_) {
    case PersistentVariant::kPreviousDay: {
      // Each forecast sample replicates the sample 24h earlier. For
      // multi-day horizons this keeps reading from the source range
      // [start-1d, end-1d): days beyond the first replicate what was
      // *forecast* — i.e. the same previous observed day.
      SEAGULL_ASSIGN_OR_RETURN(
          LoadSeries out,
          LoadSeries::MakeEmpty(start, interval, horizon_minutes / interval));
      for (int64_t i = 0; i < out.size(); ++i) {
        MinuteStamp t = out.TimeAt(i);
        // Fold multi-day horizons back onto the last observed day.
        MinuteStamp src = t - kMinutesPerDay;
        while (src >= start) src -= kMinutesPerDay;
        out.SetValue(i, recent.ValueAtTime(src));
      }
      return out;
    }
    case PersistentVariant::kPreviousEquivalentDay: {
      SEAGULL_ASSIGN_OR_RETURN(
          LoadSeries out,
          LoadSeries::MakeEmpty(start, interval, horizon_minutes / interval));
      for (int64_t i = 0; i < out.size(); ++i) {
        MinuteStamp t = out.TimeAt(i);
        MinuteStamp src = t - kMinutesPerWeek;
        while (src >= start) src -= kMinutesPerWeek;
        out.SetValue(i, recent.ValueAtTime(src));
      }
      return out;
    }
    case PersistentVariant::kPreviousWeekAverage: {
      double avg = recent.MeanInRange(start - kMinutesPerWeek, start);
      if (IsMissing(avg)) {
        // Degenerate history: fall back to the overall mean.
        avg = recent.Mean();
      }
      if (IsMissing(avg)) {
        return Status::FailedPrecondition(
            "no present samples in the previous week");
      }
      std::vector<double> values(
          static_cast<size_t>(horizon_minutes / interval), avg);
      return LoadSeries::Make(start, interval, std::move(values));
    }
  }
  return Status::Internal("unknown persistent variant");
}

Result<Json> PersistentForecast::Serialize() const {
  Json doc = Json::MakeObject();
  doc["model"] = name();
  doc["variant"] = static_cast<int64_t>(variant_);
  return doc;
}

Status PersistentForecast::Deserialize(const Json& doc) {
  SEAGULL_ASSIGN_OR_RETURN(double v, doc.GetNumber("variant"));
  int iv = static_cast<int>(v);
  if (iv < 0 || iv > 2) return Status::Invalid("bad persistent variant");
  variant_ = static_cast<PersistentVariant>(iv);
  return Status::OK();
}

}  // namespace seagull
