#include "forecast/arima.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "forecast/scratch.h"
#include "timeseries/resample.h"

namespace seagull {

namespace {

/// Applies `d` rounds of first differencing.
std::vector<double> Difference(std::vector<double> x, int d) {
  for (int round = 0; round < d; ++round) {
    if (x.size() <= 1) {
      x.clear();
      break;
    }
    for (size_t i = x.size() - 1; i >= 1; --i) x[i] -= x[i - 1];
    x.erase(x.begin());
  }
  return x;
}

/// Conditional sum of squares of an ARMA(p,q) with parameters
/// params = [c, phi_1..phi_p, theta_1..theta_q]. `e` is caller-owned
/// residual workspace: the order search calls this ~2·np times per Adam
/// iteration per candidate, so a per-call heap allocation here was the
/// single hottest allocation site in the whole training fan-out.
double CssLoss(const std::vector<double>& z, int p, int q,
               const std::vector<double>& params, std::vector<double>* e) {
  const int64_t n = static_cast<int64_t>(z.size());
  const int64_t warm = std::max(p, q);
  e->assign(static_cast<size_t>(n), 0.0);
  const double* zp = z.data();
  const double* pp = params.data();
  double* ep = e->data();
  double sse = 0.0;
  for (int64_t t = warm; t < n; ++t) {
    double pred = pp[0];
    for (int i = 1; i <= p; ++i) {
      pred += pp[i] * zp[t - i];
    }
    for (int j = 1; j <= q; ++j) {
      pred += pp[p + j] * ep[t - j];
    }
    double err = zp[t] - pred;
    ep[t] = err;
    sse += err * err;
  }
  return sse;
}

/// Projects AR coefficients into a (loosely) stationary region.
void ProjectStationary(std::vector<double>* params, int p) {
  double sum = 0.0;
  for (int i = 1; i <= p; ++i) sum += std::fabs((*params)[static_cast<size_t>(i)]);
  if (sum > 0.98) {
    double scale = 0.98 / sum;
    for (int i = 1; i <= p; ++i) (*params)[static_cast<size_t>(i)] *= scale;
  }
}

/// Fast-path candidate optimizer: CSS fit of an ARMA(p,q) by Adam on
/// the *analytic* gradient. The scalar reference above differentiates
/// numerically — two full residual recursions per parameter per
/// iteration (2·np passes). Here one fused, scratch-backed pass per
/// iteration computes the residuals and, via the sensitivity recursion
///
///   s_t[k] = ∂e_t/∂θ_k = −x_k(t) − Σ_j θ_j · s_{t−j}[k]
///
/// (x_k(t) the direct regressor: 1, z_{t−i}, or e_{t−j}), accumulates
/// dSSE/dθ_k = Σ_t 2·e_t·s_t[k] incrementally. Only the last q+1
/// sensitivity rows are live, so the recursion runs in a small ring
/// buffer and the loop body is branch-free pointer arithmetic. A
/// plateau early-exit stops once the loss stops improving (Adam orbits
/// the optimum instead of settling, so the loss signal is the stable
/// stopping criterion). Returns the SSE at the returned parameters.
double FitCandidateCss(const std::vector<double>& z, int p, int q,
                       int64_t max_iters, double lr,
                       std::vector<double>* params_io,
                       std::vector<double>* e_ws) {
  const int64_t n = static_cast<int64_t>(z.size());
  const int np = 1 + p + q;
  const int64_t warm = std::max(p, q);
  const int64_t ring = q + 1;
  KernelScratch& scratch = KernelScratch::Local();
  std::vector<double>& sens = scratch.Vec(
      kscratch::kArimaSens, static_cast<size_t>(ring * np));
  std::vector<double>& grad =
      scratch.Vec(kscratch::kArimaGrad, static_cast<size_t>(np));
  std::vector<double>& adam =
      scratch.VecZero(kscratch::kArimaAdam, static_cast<size_t>(2 * np));
  double* mom = adam.data();
  double* vel = mom + np;
  e_ws->assign(static_cast<size_t>(n), 0.0);
  double* ep = e_ws->data();
  const double* zp = z.data();
  const double b1 = 0.9, b2 = 0.999, eps = 1e-8;
  double pow_b1 = 1.0, pow_b2 = 1.0;
  double prev_sse = std::numeric_limits<double>::infinity();
  int plateau = 0;
  for (int64_t it = 0; it < max_iters; ++it) {
    double* pp = params_io->data();
    std::fill(sens.begin(), sens.end(), 0.0);
    std::fill(grad.begin(), grad.end(), 0.0);
    std::fill(ep, ep + warm, 0.0);
    double* sp = sens.data();
    double* gp = grad.data();
    double sse = 0.0;
    for (int64_t t = warm; t < n; ++t) {
      double pred = pp[0];
      for (int i = 1; i <= p; ++i) pred += pp[i] * zp[t - i];
      for (int j = 1; j <= q; ++j) pred += pp[p + j] * ep[t - j];
      const double err = zp[t] - pred;
      ep[t] = err;
      sse += err * err;
      double* st = sp + (t % ring) * np;
      st[0] = -1.0;
      for (int i = 1; i <= p; ++i) st[i] = -zp[t - i];
      for (int j = 1; j <= q; ++j) st[p + j] = -ep[t - j];
      for (int j = 1; j <= q; ++j) {
        const double th = pp[p + j];
        const double* sj = sp + ((t - j) % ring) * np;
        for (int k = 0; k < np; ++k) st[k] -= th * sj[k];
      }
      const double err2 = 2.0 * err;
      for (int k = 0; k < np; ++k) gp[k] += err2 * st[k];
    }
    // Plateau exit: three consecutive iterations without a relative
    // loss improvement of 1e-8 end the candidate. Deterministic — the
    // decision depends only on the (fixed-order) arithmetic above.
    if (sse >= prev_sse - 1e-8 * std::max(prev_sse, 1e-12)) {
      if (++plateau >= 3) break;
    } else {
      plateau = 0;
    }
    prev_sse = std::min(prev_sse, sse);
    // One joint Adam step over all np parameters (the scalar reference
    // updates coordinates sequentially inside its numeric-diff loop).
    pow_b1 *= b1;
    pow_b2 *= b2;
    for (int k = 0; k < np; ++k) {
      const double g = gp[k];
      mom[k] = b1 * mom[k] + (1 - b1) * g;
      vel[k] = b2 * vel[k] + (1 - b2) * g * g;
      const double mh = mom[k] / (1 - pow_b1);
      const double vh = vel[k] / (1 - pow_b2);
      pp[k] -= lr * mh / (std::sqrt(vh) + eps);
    }
    ProjectStationary(params_io, p);
  }
  return CssLoss(z, p, q, *params_io, e_ws);
}

}  // namespace

Status ArimaForecast::Fit(const LoadSeries& train) {
  if (train.CountPresent() < 32) {
    return Status::FailedPrecondition("ARIMA needs training history");
  }
  const LoadSeries filled = InterpolateMissing(train);
  interval_ = filled.interval_minutes();
  KernelScratch& scratch = KernelScratch::Local();
  std::vector<double>& x =
      scratch.Vec(kscratch::kArimaSeries, static_cast<size_t>(filled.size()));
  for (int64_t i = 0; i < filled.size(); ++i) {
    x[static_cast<size_t>(i)] = filled.ValueAt(i);
  }
  std::vector<double>& e = scratch.Vec(kscratch::kArimaResiduals, 0);
  // Optimizer state is tiny (≤ 8 doubles per vector) but lives inside
  // the candidate loop; hoist so each fit allocates it at most once.
  std::vector<double> params, m, v;
  const bool fast = GetKernelMode() == KernelMode::kFast;
  // Warm-start lattice (fast path): converged parameters of each
  // already-fitted (p,q) candidate at the current d. The layout
  // [c, φ₁..φ_p, θ₁..θ_q] makes seeding (p,q) from (p,q−1) — or
  // (p,0) from (p−1,0) — a prefix copy plus a zero-appended new
  // coefficient, which lands the optimizer near the optimum and lets
  // the plateau exit fire after a handful of iterations.
  std::vector<std::vector<double>> lattice(
      static_cast<size_t>((options_.max_p + 1) * (options_.max_q + 1)));
  auto lattice_at = [&](int lp, int lq) -> std::vector<double>& {
    return lattice[static_cast<size_t>(lp * (options_.max_q + 1) + lq)];
  };

  double best_aic = std::numeric_limits<double>::infinity();
  // pmdarima-style exhaustive order search: this loop is the documented
  // reason ARIMA was excluded from production (§2.1).
  for (int d = 0; d <= options_.max_d; ++d) {
    std::vector<double>& z = scratch.Vec(kscratch::kArimaDiff, 0);
    z.assign(x.begin(), x.end());
    // Same arithmetic as Difference(), applied in the reusable buffer.
    for (int round = 0; round < d; ++round) {
      if (z.size() <= 1) {
        z.clear();
        break;
      }
      for (size_t i = z.size() - 1; i >= 1; --i) z[i] -= z[i - 1];
      z.erase(z.begin());
    }
    const int64_t n = static_cast<int64_t>(z.size());
    if (n < 16) continue;
    for (auto& slot : lattice) slot.clear();
    for (int p = 0; p <= options_.max_p; ++p) {
      for (int q = 0; q <= options_.max_q; ++q) {
        if (p == 0 && q == 0 && d == 0) continue;
        const int np = 1 + p + q;
        params.assign(static_cast<size_t>(np), 0.0);
        // Warm start: small positive AR(1)-ish prior.
        if (p > 0) params[1] = 0.5;
        double sse;
        if (fast) {
          auto seed_from = [&](int sp, int sq) {
            const std::vector<double>& src = lattice_at(sp, sq);
            if (src.empty()) return;
            params.assign(static_cast<size_t>(np), 0.0);
            params[0] = src[0];
            for (int i = 1; i <= std::min(p, sp); ++i) params[i] = src[i];
            for (int j = 1; j <= std::min(q, sq); ++j) {
              params[static_cast<size_t>(p + j)] =
                  src[static_cast<size_t>(sp + j)];
            }
          };
          if (q > 0) {
            seed_from(p, q - 1);
          } else if (p > 0) {
            seed_from(p - 1, 0);
          }
          sse = FitCandidateCss(z, p, q, options_.iterations,
                                options_.learning_rate, &params, &e);
          lattice_at(p, q) = params;
        } else {
          // Scalar reference: Adam on a central-difference numeric
          // gradient — two full residual recursions per parameter per
          // iteration.
          m.assign(params.size(), 0.0);
          v.assign(params.size(), 0.0);
          const double b1 = 0.9, b2 = 0.999, eps = 1e-8;
          const double h = 1e-4;
          for (int64_t it = 0; it < options_.iterations; ++it) {
            for (size_t k = 0; k < params.size(); ++k) {
              double orig = params[k];
              params[k] = orig + h;
              double up = CssLoss(z, p, q, params, &e);
              params[k] = orig - h;
              double dn = CssLoss(z, p, q, params, &e);
              params[k] = orig;
              double g = (up - dn) / (2 * h);
              m[k] = b1 * m[k] + (1 - b1) * g;
              v[k] = b2 * v[k] + (1 - b2) * g * g;
              double mh =
                  m[k] / (1 - std::pow(b1, static_cast<double>(it + 1)));
              double vh =
                  v[k] / (1 - std::pow(b2, static_cast<double>(it + 1)));
              params[k] -= options_.learning_rate * mh / (std::sqrt(vh) + eps);
            }
            ProjectStationary(&params, p);
          }
          sse = CssLoss(z, p, q, params, &e);
        }
        int64_t eff = n - std::max(p, q);
        if (eff <= np + 1 || sse <= 0) continue;
        double aic = static_cast<double>(eff) *
                         std::log(sse / static_cast<double>(eff)) +
                     2.0 * static_cast<double>(np);
        if (aic < best_aic) {
          best_aic = aic;
          p_ = p;
          d_ = d;
          q_ = q;
          c_ = params[0];
          phi_.assign(params.begin() + 1, params.begin() + 1 + p);
          theta_.assign(params.begin() + 1 + p, params.end());
        }
      }
    }
  }
  if (!std::isfinite(best_aic)) {
    return Status::Internal("ARIMA order search failed");
  }
  aic_ = best_aic;
  fitted_ = true;
  return Status::OK();
}

Result<LoadSeries> ArimaForecast::Forecast(const LoadSeries& recent,
                                           MinuteStamp start,
                                           int64_t horizon_minutes) const {
  if (!fitted_) return Status::FailedPrecondition("ARIMA is not fitted");
  if (start % interval_ != 0 || horizon_minutes % interval_ != 0) {
    return Status::Invalid("forecast range must be grid-aligned");
  }
  // Condition on the last two days of history.
  LoadSeries ctx = InterpolateMissing(
      recent.Slice(start - 2 * kMinutesPerDay, start));
  if (ctx.size() < 8) {
    return Status::FailedPrecondition("ARIMA forecast needs recent history");
  }
  std::vector<double> x = ctx.values();
  std::vector<double> z = Difference(x, d_);
  const int64_t n = static_cast<int64_t>(z.size());

  // Reconstruct in-sample residuals for the MA part.
  const int64_t warm = std::max(p_, q_);
  std::vector<double> e(static_cast<size_t>(n), 0.0);
  for (int64_t t = warm; t < n; ++t) {
    double pred = c_;
    for (int i = 1; i <= p_; ++i) {
      pred += phi_[static_cast<size_t>(i - 1)] * z[static_cast<size_t>(t - i)];
    }
    for (int j = 1; j <= q_; ++j) {
      pred += theta_[static_cast<size_t>(j - 1)] *
              e[static_cast<size_t>(t - j)];
    }
    e[static_cast<size_t>(t)] = z[static_cast<size_t>(t)] - pred;
  }

  const int64_t steps = horizon_minutes / interval_;
  std::vector<double> zf = z, ef = e;
  std::vector<double> out(static_cast<size_t>(steps), 0.0);
  // Last levels for inverting the differencing.
  double last_level = x.empty() ? 0.0 : x.back();
  for (int64_t s = 0; s < steps; ++s) {
    int64_t t = n + s;
    double pred = c_;
    for (int i = 1; i <= p_; ++i) {
      int64_t idx = t - i;
      double zv = idx < static_cast<int64_t>(zf.size())
                      ? zf[static_cast<size_t>(idx)]
                      : 0.0;
      pred += phi_[static_cast<size_t>(i - 1)] * zv;
    }
    for (int j = 1; j <= q_; ++j) {
      int64_t idx = t - j;
      double ev = idx < static_cast<int64_t>(ef.size())
                      ? ef[static_cast<size_t>(idx)]
                      : 0.0;
      pred += theta_[static_cast<size_t>(j - 1)] * ev;
    }
    zf.push_back(pred);
    ef.push_back(0.0);  // expected future shocks are zero
    double level = d_ == 0 ? pred : last_level + pred;
    if (d_ > 0) last_level = level;
    out[static_cast<size_t>(s)] = std::clamp(level, 0.0, 200.0);
  }
  return LoadSeries::Make(start, interval_, std::move(out));
}

Result<Json> ArimaForecast::Serialize() const {
  if (!fitted_) return Status::FailedPrecondition("serialize before fit");
  Json doc = Json::MakeObject();
  doc["model"] = name();
  doc["interval"] = interval_;
  doc["p"] = p_;
  doc["d"] = d_;
  doc["q"] = q_;
  doc["c"] = c_;
  doc["aic"] = aic_;
  Json phi = Json::MakeArray();
  for (double v : phi_) phi.Append(v);
  doc["phi"] = std::move(phi);
  Json theta = Json::MakeArray();
  for (double v : theta_) theta.Append(v);
  doc["theta"] = std::move(theta);
  return doc;
}

Status ArimaForecast::Deserialize(const Json& doc) {
  SEAGULL_ASSIGN_OR_RETURN(double interval, doc.GetNumber("interval"));
  SEAGULL_ASSIGN_OR_RETURN(double p, doc.GetNumber("p"));
  SEAGULL_ASSIGN_OR_RETURN(double d, doc.GetNumber("d"));
  SEAGULL_ASSIGN_OR_RETURN(double q, doc.GetNumber("q"));
  SEAGULL_ASSIGN_OR_RETURN(c_, doc.GetNumber("c"));
  SEAGULL_ASSIGN_OR_RETURN(aic_, doc.GetNumber("aic"));
  interval_ = static_cast<int64_t>(interval);
  p_ = static_cast<int>(p);
  d_ = static_cast<int>(d);
  q_ = static_cast<int>(q);
  auto load = [&doc](const char* key, std::vector<double>* w) -> Status {
    const Json& arr = doc[key];
    if (!arr.is_array()) return Status::Invalid("missing coefficient array");
    w->clear();
    for (const auto& v : arr.AsArray()) {
      if (!v.is_number()) return Status::Invalid("non-numeric coefficient");
      w->push_back(v.AsDouble());
    }
    return Status::OK();
  };
  SEAGULL_RETURN_NOT_OK(load("phi", &phi_));
  SEAGULL_RETURN_NOT_OK(load("theta", &theta_));
  if (static_cast<int>(phi_.size()) != p_ ||
      static_cast<int>(theta_.size()) != q_) {
    return Status::Invalid("ARIMA order/coefficient mismatch");
  }
  fitted_ = true;
  return Status::OK();
}

}  // namespace seagull
