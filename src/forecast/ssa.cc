#include "forecast/ssa.h"

#include <algorithm>
#include <cmath>

#include "forecast/linalg.h"
#include "forecast/scratch.h"
#include "timeseries/resample.h"

namespace seagull {

Status SsaForecast::Fit(const LoadSeries& train) {
  if (train.CountPresent() < 4) {
    return Status::FailedPrecondition("SSA needs training history");
  }
  const LoadSeries filled = InterpolateMissing(train);
  interval_ = filled.interval_minutes();
  const int64_t n = filled.size();
  int64_t L = options_.window;
  if (2 * L - 1 > n) L = (n + 1) / 2;
  if (L < 3) return Status::FailedPrecondition("series too short for SSA");

  mean_ = filled.Mean();

  // The recurrence needs only the lag-space singular vectors — the
  // eigenvectors of the L×L lag covariance C = AᵀA where A is the K×L
  // trajectory matrix A[i][j] = x_{i+j}. The Hankel structure lets
  // BuildLagGram assemble C in O(n·L) (one prefix-sum pass per lag)
  // instead of the O(K·L²) materialized product, and the
  // eigendecomposition is O(L³) — far below a full SVD. The de-meaned
  // series and the Gram live in the per-thread scratch arena so the
  // training fan-out reuses them across servers.
  KernelScratch& scratch = KernelScratch::Local();
  std::vector<double>& x =
      scratch.Vec(kscratch::kSsaSeries, static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    x[static_cast<size_t>(i)] = filled.ValueAt(i) - mean_;
  }
  Matrix& cov = scratch.Mat(kscratch::kMatSsaGram, L, L);
  BuildLagGram(x.data(), n, L, &cov);
  Matrix& vectors = scratch.Mat(kscratch::kMatSsaEigVec, 0, 0);
  std::vector<double>& values = scratch.Vec(kscratch::kSsaEigVals, 0);
  SEAGULL_RETURN_NOT_OK(SymmetricEigenInPlace(&cov, &vectors, &values));

  // Retain leading components by energy (eigenvalues of C are squared
  // singular values of A).
  double total = 0.0;
  for (double v : values) total += std::max(v, 0.0);
  if (total <= 0.0) {
    // Perfectly flat series: the mean is the whole forecast.
    lrf_.assign(static_cast<size_t>(L - 1), 0.0);
    rank_ = 0;
    fitted_ = true;
    return Status::OK();
  }
  int64_t r = 0;
  double acc = 0.0;
  while (r < static_cast<int64_t>(values.size()) &&
         r < options_.max_components &&
         acc / total < options_.energy_threshold) {
    acc += std::max(values[static_cast<size_t>(r)], 0.0);
    ++r;
  }
  rank_ = std::max<int64_t>(r, 1);

  // Linear recurrence from the retained lag-space eigenvectors:
  // nu2 = sum of squared last components; R = (1/(1-nu2)) * sum pi_i u_i.
  double nu2 = 0.0;
  for (int64_t i = 0; i < rank_; ++i) {
    double pi = vectors.At(L - 1, i);
    nu2 += pi * pi;
  }
  if (nu2 >= 1.0 - 1e-9) {
    // Degenerate vertical component; drop trailing components until the
    // recurrence is well-defined.
    while (rank_ > 1 && nu2 >= 1.0 - 1e-9) {
      double pi = vectors.At(L - 1, rank_ - 1);
      nu2 -= pi * pi;
      --rank_;
    }
    if (nu2 >= 1.0 - 1e-9) {
      return Status::Internal("SSA recurrence is degenerate");
    }
  }
  lrf_.assign(static_cast<size_t>(L - 1), 0.0);
  for (int64_t i = 0; i < rank_; ++i) {
    double pi = vectors.At(L - 1, i);
    for (int64_t j = 0; j < L - 1; ++j) {
      lrf_[static_cast<size_t>(j)] += pi * vectors.At(j, i);
    }
  }
  for (auto& c : lrf_) c /= (1.0 - nu2);
  fitted_ = true;
  return Status::OK();
}

Result<LoadSeries> SsaForecast::Forecast(const LoadSeries& recent,
                                         MinuteStamp start,
                                         int64_t horizon_minutes) const {
  if (!fitted_) return Status::FailedPrecondition("SSA model is not fitted");
  if (recent.empty()) {
    return Status::FailedPrecondition("SSA forecast needs recent history");
  }
  const int64_t interval = interval_;
  if (start % interval != 0 || horizon_minutes % interval != 0) {
    return Status::Invalid("forecast range must be grid-aligned");
  }
  const int64_t lag = static_cast<int64_t>(lrf_.size());
  const int64_t steps = horizon_minutes / interval;

  // Seed the recurrence with the last `lag` de-meaned samples before
  // `start`.
  LoadSeries context =
      InterpolateMissing(recent.Slice(start - (lag + 4) * interval, start));
  std::vector<double>& window = KernelScratch::Local().VecZero(
      kscratch::kSsaWindow, static_cast<size_t>(lag));
  for (int64_t j = 0; j < lag; ++j) {
    double v = context.ValueAtTime(start - (lag - j) * interval);
    window[static_cast<size_t>(j)] = IsMissing(v) ? 0.0 : v - mean_;
  }

  std::vector<double> out(static_cast<size_t>(steps), 0.0);
  const double clamp_hi = 200.0;  // numeric guard; load is a percentage
  for (int64_t t = 0; t < steps; ++t) {
    double next = Dot(lrf_, window);
    if (!std::isfinite(next)) next = 0.0;
    next = std::clamp(next, -clamp_hi, clamp_hi);
    out[static_cast<size_t>(t)] = std::max(0.0, next + mean_);
    // Shift the lag window.
    if (lag > 0) {
      std::rotate(window.begin(), window.begin() + 1, window.end());
      window.back() = next;
    }
  }
  return LoadSeries::Make(start, interval, std::move(out));
}

Result<Json> SsaForecast::Serialize() const {
  if (!fitted_) return Status::FailedPrecondition("serialize before fit");
  Json doc = Json::MakeObject();
  doc["model"] = name();
  doc["mean"] = mean_;
  doc["interval"] = interval_;
  doc["rank"] = rank_;
  Json coeffs = Json::MakeArray();
  for (double c : lrf_) coeffs.Append(c);
  doc["lrf"] = std::move(coeffs);
  return doc;
}

Status SsaForecast::Deserialize(const Json& doc) {
  SEAGULL_ASSIGN_OR_RETURN(mean_, doc.GetNumber("mean"));
  SEAGULL_ASSIGN_OR_RETURN(double interval, doc.GetNumber("interval"));
  SEAGULL_ASSIGN_OR_RETURN(double rank, doc.GetNumber("rank"));
  interval_ = static_cast<int64_t>(interval);
  rank_ = static_cast<int64_t>(rank);
  if (!doc["lrf"].is_array()) return Status::Invalid("missing lrf array");
  lrf_.clear();
  for (const auto& c : doc["lrf"].AsArray()) {
    if (!c.is_number()) return Status::Invalid("non-numeric lrf entry");
    lrf_.push_back(c.AsDouble());
  }
  fitted_ = true;
  return Status::OK();
}

}  // namespace seagull
