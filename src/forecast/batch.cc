#include "forecast/batch.h"

#include <map>
#include <memory>
#include <tuple>
#include <utility>

#include "common/obs/clock.h"
#include "forecast/additive.h"
#include "forecast/feedforward.h"
#include "forecast/linalg.h"
#include "parallel/thread_pool.h"
#include "timeseries/resample.h"

namespace seagull {

namespace {

/// Series on one telemetry grid share every value-independent fit
/// structure. `InterpolateMissing` preserves the grid, so the raw
/// slice's shape is the grouping key.
using ShapeKey = std::tuple<MinuteStamp, MinuteStamp, int64_t, int64_t>;

ShapeKey KeyOf(const LoadSeries& s) {
  return {s.start(), s.end(), s.interval_minutes(), s.size()};
}

void RunLoop(ThreadPool* pool, int64_t n,
             const std::function<void(int64_t)>& fn) {
  if (pool != nullptr) {
    ParallelFor(pool, n, fn);
  } else {
    SequentialFor(n, fn);
  }
}

/// Serializes a fitted model into `out`, finalizing its status.
void FinishItem(const ForecastModel& model, Status fit,
                BatchTrainResult* out) {
  if (!fit.ok()) {
    out->status = std::move(fit);
    return;
  }
  auto doc = model.Serialize();
  if (!doc.ok()) {
    out->status = doc.status();
    return;
  }
  out->doc = std::move(doc).ValueUnsafe();
}

/// Fallback: the plain per-server path for families without a batched
/// optimizer core.
void GenericFit(const std::string& name, const LoadSeries& train,
                BatchTrainResult* out) {
  auto model = ModelFactory::Global().Create(name);
  if (!model.ok()) {
    out->status = model.status();
    return;
  }
  const int64_t t0 = ObsClock::NowMicros();
  Status fit = (*model)->Fit(train);
  out->fit_micros = static_cast<double>(ObsClock::NowMicros() - t0);
  FinishItem(**model, std::move(fit), out);
}

}  // namespace

/// Additive group: one design matrix (and, in fast mode, its Gram)
/// serves every server on the grid. Both live on the heap for the
/// duration of the group — pool workers have their own thread-local
/// scratch arenas, so group-shared state cannot live there.
void BatchTrainer::FitAdditiveGroup(const std::string& name,
                                    const std::vector<BatchTrainItem>& items,
                                    const std::vector<int64_t>& members,
                                    ThreadPool* pool,
                                    std::vector<BatchTrainResult>* results) {
  auto builder_or = ModelFactory::Global().Create(name);
  auto* builder =
      builder_or.ok() ? dynamic_cast<AdditiveForecast*>(builder_or->get())
                      : nullptr;
  if (builder == nullptr) {
    RunLoop(pool, static_cast<int64_t>(members.size()), [&](int64_t k) {
      const int64_t i = members[static_cast<size_t>(k)];
      GenericFit(name, *items[static_cast<size_t>(i)].train,
                 &(*results)[static_cast<size_t>(i)]);
    });
    return;
  }
  // Any member anchors the grid: the design depends only on the time
  // axis and the model options, both identical across the group. The
  // rows come out bit-identical to what each per-server fit would have
  // built, which is what makes the batched results byte-equal.
  const LoadSeries anchor =
      InterpolateMissing(*items[static_cast<size_t>(members[0])].train);
  builder->SetTrainRange(anchor);
  const int64_t n = anchor.size();
  const int64_t p = builder->NumFeatures();
  Matrix design(n, p);
  for (int64_t i = 0; i < n; ++i) {
    builder->FeaturesAt(anchor.TimeAt(i), design.Row(i));
  }
  const bool fast = GetKernelMode() == KernelMode::kFast;
  Matrix gram;
  if (fast) gram = AtA(design);

  RunLoop(pool, static_cast<int64_t>(members.size()), [&](int64_t k) {
    const int64_t i = members[static_cast<size_t>(k)];
    BatchTrainResult& out = (*results)[static_cast<size_t>(i)];
    const LoadSeries& train = *items[static_cast<size_t>(i)].train;
    auto model_or = ModelFactory::Global().Create(name);
    auto* model = model_or.ok()
                      ? dynamic_cast<AdditiveForecast*>(model_or->get())
                      : nullptr;
    if (model == nullptr) {
      out.status = model_or.ok()
                       ? Status::Internal("additive family changed type")
                       : model_or.status();
      return;
    }
    const int64_t t0 = ObsClock::NowMicros();
    Status fit;
    if (train.CountPresent() < 8) {
      fit = Status::FailedPrecondition("additive model needs history");
    } else {
      const LoadSeries filled = InterpolateMissing(train);
      model->SetTrainRange(filled);
      fit = model->FitWithDesign(filled, design, fast ? &gram : nullptr);
    }
    out.fit_micros = static_cast<double>(ObsClock::NowMicros() - t0);
    FinishItem(*model, std::move(fit), &out);
  });
}

/// Feed-forward group: every server trains against one trio of
/// structure-of-arrays arenas — row b of params/mom/vel is server b's
/// [w1|b1|w2|b2] block and Adam state. The Matrix constructor
/// zero-fills, matching the zeroed scratch state a per-server fit
/// starts from. Epochs stay inner per-server: each server's window set
/// streams through the batched-matmul kernels while its rows stay hot,
/// which beats lockstep epochs that would cycle every arena row through
/// cache per epoch.
void BatchTrainer::FitFeedForwardGroup(
    const std::string& name, const std::vector<BatchTrainItem>& items,
    const std::vector<int64_t>& members, ThreadPool* pool,
    std::vector<BatchTrainResult>* results) {
  auto builder_or = ModelFactory::Global().Create(name);
  auto* builder =
      builder_or.ok() ? dynamic_cast<FeedForwardForecast*>(builder_or->get())
                      : nullptr;
  if (builder == nullptr) {
    RunLoop(pool, static_cast<int64_t>(members.size()), [&](int64_t k) {
      const int64_t i = members[static_cast<size_t>(k)];
      GenericFit(name, *items[static_cast<size_t>(i)].train,
                 &(*results)[static_cast<size_t>(i)]);
    });
    return;
  }
  const int64_t np = builder->NumParams();
  const int64_t b = static_cast<int64_t>(members.size());
  Matrix params(b, np);
  Matrix mom(b, np);
  Matrix vel(b, np);

  RunLoop(pool, b, [&](int64_t k) {
    const int64_t i = members[static_cast<size_t>(k)];
    BatchTrainResult& out = (*results)[static_cast<size_t>(i)];
    const LoadSeries& train = *items[static_cast<size_t>(i)].train;
    auto model_or = ModelFactory::Global().Create(name);
    auto* model = model_or.ok()
                      ? dynamic_cast<FeedForwardForecast*>(model_or->get())
                      : nullptr;
    if (model == nullptr) {
      out.status = model_or.ok()
                       ? Status::Internal("feedforward family changed type")
                       : model_or.status();
      return;
    }
    const int64_t t0 = ObsClock::NowMicros();
    const LoadSeries filled = InterpolateMissing(train);
    Status fit = model->FitCore(filled, params.Row(k), mom.Row(k),
                                vel.Row(k));
    if (fit.ok()) model->AdoptParams(params.Row(k));
    out.fit_micros = static_cast<double>(ObsClock::NowMicros() - t0);
    FinishItem(*model, std::move(fit), &out);
  });
}

Result<std::vector<BatchTrainResult>> BatchTrainer::Fit(
    const std::string& model_name, const std::vector<BatchTrainItem>& items,
    ThreadPool* pool, BatchTrainStats* stats) {
  for (const BatchTrainItem& item : items) {
    if (item.train == nullptr) {
      return Status::Invalid("BatchTrainItem with null series");
    }
  }
  std::vector<BatchTrainResult> results(items.size());
  if (items.empty()) return results;

  SEAGULL_ASSIGN_OR_RETURN(auto probe,
                           ModelFactory::Global().Create(model_name));
  const bool is_additive =
      dynamic_cast<AdditiveForecast*>(probe.get()) != nullptr;
  const bool is_feedforward =
      dynamic_cast<FeedForwardForecast*>(probe.get()) != nullptr;

  if (!is_additive && !is_feedforward) {
    // No value-independent structure to share — plain per-item fits.
    RunLoop(pool, static_cast<int64_t>(items.size()), [&](int64_t i) {
      GenericFit(model_name, *items[static_cast<size_t>(i)].train,
                 &results[static_cast<size_t>(i)]);
    });
    return results;
  }

  // Group in input order (first-seen key order is deterministic and
  // independent of the pool). Feed-forward arenas are shape-agnostic,
  // but grouping by grid keeps the group loop uniform and bounds arena
  // peak size to the largest group.
  std::map<ShapeKey, size_t> group_of;
  std::vector<std::vector<int64_t>> groups;
  for (size_t i = 0; i < items.size(); ++i) {
    const ShapeKey key = KeyOf(*items[i].train);
    auto [it, inserted] = group_of.emplace(key, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(static_cast<int64_t>(i));
  }

  for (const std::vector<int64_t>& members : groups) {
    if (is_additive) {
      FitAdditiveGroup(model_name, items, members, pool, &results);
    } else {
      FitFeedForwardGroup(model_name, items, members, pool, &results);
    }
    if (stats != nullptr) {
      stats->groups += 1;
      if (members.size() > 1) {
        stats->shared_fits += static_cast<int64_t>(members.size());
      }
    }
  }
  return results;
}

}  // namespace seagull
