/// \file quickstart.cpp
/// \brief Minimal end-to-end Seagull run.
///
/// Generates one small simulated region, runs the weekly pipeline
/// (ingestion → validation → features → training → deployment → accuracy
/// → tracking), schedules the following week's backups daily, executes
/// them, and prints the dashboard plus the impact accounting.
///
/// Usage: quickstart [num_servers] [weeks]

#include <cstdio>
#include <cstdlib>

#include "scheduling/simulation.h"

int main(int argc, char** argv) {
  using namespace seagull;

  int num_servers = argc > 1 ? std::atoi(argv[1]) : 300;
  int weeks = argc > 2 ? std::atoi(argv[2]) : 4;

  RegionConfig region;
  region.name = "quickstart";
  region.num_servers = num_servers;
  region.weeks = weeks;
  region.seed = 2026;

  SimulationOptions options;
  options.regions = {region};
  options.model_name = "persistent_prev_day";  // the production choice, §5.4
  options.threads = 4;

  std::printf("Seagull quickstart: %d servers, %d weeks, model %s\n\n",
              num_servers, weeks, options.model_name.c_str());

  auto result = RunSimulation(options);
  if (!result.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  for (const auto& r : result->regions) {
    std::printf("region %s: %zu pipeline runs, %lld backups scheduled, "
                "%lld moved to low-load windows, %zu alerts\n",
                r.region.c_str(), r.runs.size(),
                static_cast<long long>(r.backups_scheduled),
                static_cast<long long>(r.backups_moved), r.alerts.size());
    for (const auto& run : r.runs) {
      std::printf("  week %lld: %s, %.1f ms total",
                  static_cast<long long>(run.week),
                  run.success ? "ok" : "FAILED", run.TotalMillis());
      for (const auto& t : run.timings) {
        std::printf("  %s=%.0fms", t.module.c_str(), t.millis);
      }
      std::printf("\n");
    }
  }
  std::printf("\n--- dashboard & impact ---\n%s\n",
              result->dashboard_text.c_str());
  return 0;
}
