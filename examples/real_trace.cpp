/// \file real_trace.cpp
/// \brief Onboarding real telemetry: run the Seagull pipeline on a trace
/// in the Azure Public Dataset VM format instead of the simulator.
///
/// Given a file of `timestamp,vm_id,min_cpu,max_cpu,avg_cpu` rows
/// (seconds, 300 s cadence) — or nothing, in which case a small demo
/// trace is fabricated — this example imports the trace, stages it into
/// a lake store, runs the weekly pipeline, and schedules the following
/// week's backups for the predictable VMs.
///
/// Usage: real_trace [trace.csv]

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/random.h"
#include "common/strings.h"
#include "pipeline/scheduler.h"
#include "scheduling/backup_scheduler.h"
#include "telemetry/azure_trace.h"

using namespace seagull;

namespace {

/// Fabricates four weeks of trace data for a handful of VMs with mixed
/// behaviours, in the public dataset's format.
std::string DemoTrace() {
  std::string text = "timestamp,vm_id,min_cpu,max_cpu,avg_cpu\n";
  Rng rng(12);
  for (int64_t tick = 0; tick < 4 * 7 * 288; ++tick) {
    int64_t seconds = tick * 300;
    int64_t tick_of_day = tick % 288;
    // vm-flat: stable; vm-diurnal: nightly valley; vm-chaotic: drifts.
    double flat = 18.0 + rng.Gaussian(0.0, 1.0);
    double diurnal =
        (tick_of_day < 60 ? 8.0 : 42.0) + rng.Gaussian(0.0, 1.0);
    static double level = 30.0;
    if (tick % 288 == 0) level = rng.Uniform(10.0, 55.0);
    double chaotic = level + rng.Gaussian(0.0, 2.0);
    auto row = [&](const char* id, double v) {
      v = std::clamp(v, 0.0, 100.0);
      text += StringPrintf("%lld,%s,%.2f,%.2f,%.2f\n",
                           static_cast<long long>(seconds), id, v - 1.0,
                           v + 1.0, v);
    };
    row("vm-flat", flat);
    row("vm-diurnal", diurnal);
    row("vm-chaotic", chaotic);
  }
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  std::string text;
  if (argc > 1) {
    std::ifstream in(argv[1], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
    std::printf("imported trace: %s\n", argv[1]);
  } else {
    text = DemoTrace();
    std::printf("no trace given; fabricated a 3-VM demo trace\n");
  }

  auto servers = ImportAzureVmTrace(text);
  if (!servers.ok()) {
    std::fprintf(stderr, "import failed: %s\n",
                 servers.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu VMs imported\n", servers->size());

  // Stage into a lake and run the weekly pipeline at the trace's last
  // week, so every evidence week has a prior day to forecast from.
  auto lake = LakeStore::OpenTemporary("real-trace");
  lake.status().Abort();
  int64_t pipeline_week = 0;
  for (const auto& server : *servers) {
    pipeline_week =
        std::max(pipeline_week, WeekIndex(server.load.end() - 1));
  }
  lake->Put(LakeStore::TelemetryKey("trace", pipeline_week),
            ExportToTelemetryCsv(*servers))
      .Abort();

  DocStore docs;
  Pipeline pipeline = Pipeline::Standard();
  PipelineScheduler scheduler(&pipeline, &*lake, &docs);
  PipelineContext config;
  auto run = scheduler.RunIfDue("trace", pipeline_week, config);
  std::printf("pipeline week %lld: %s\n",
              static_cast<long long>(pipeline_week),
              run.report.success ? "ok" : run.report.failure.c_str());
  if (!run.report.success) return 1;

  // Schedule the next week's backups day by day.
  ServiceFabricProperties properties;
  BackupScheduler backup_scheduler(&docs, &properties);
  int64_t moved = 0, total = 0;
  for (int64_t dow = 0; dow < 7; ++dow) {
    int64_t day = (pipeline_week + 1) * 7 + dow;
    std::vector<DueServer> due;
    for (const auto& server : *servers) {
      if (DayOfWeekOf(server.default_backup_start) !=
          DayOfWeekOf(day * kMinutesPerDay)) {
        continue;
      }
      DueServer d;
      d.server_id = server.server_id;
      d.recent_load =
          server.load.Slice(server.load.start(), day * kMinutesPerDay);
      d.default_start =
          day * kMinutesPerDay + MinuteOfDay(server.default_backup_start);
      d.default_end = d.default_start + server.backup_duration_minutes();
      d.backup_duration_minutes = server.backup_duration_minutes();
      due.push_back(std::move(d));
    }
    for (const auto& sched :
         backup_scheduler.ScheduleDay("trace", day, due)) {
      ++total;
      if (sched.moved()) ++moved;
      std::printf("  %-12s %s -> %s (%s)\n", sched.server_id.c_str(),
                  FormatMinute(sched.default_start).c_str(),
                  FormatMinute(sched.window_start).c_str(),
                  ScheduleDecisionName(sched.decision));
    }
  }
  std::printf("%lld/%lld backups moved to predicted low-load windows\n",
              static_cast<long long>(moved), static_cast<long long>(total));
  return 0;
}
