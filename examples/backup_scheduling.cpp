/// \file backup_scheduling.cpp
/// \brief The headline scenario: multi-region, multi-week backup
/// scheduling with impact accounting.
///
/// Runs the full Seagull loop over the paper's four-regions setup —
/// weekly load extraction into the lake store, the AML-pipeline analog
/// per region, daily backup scheduling through the service-fabric
/// property, execution against ground truth — and prints the
/// per-cohort impact report (Figure 13(a)-style) plus the operations
/// dashboard.
///
/// Usage: backup_scheduling [scale] [weeks]

#include <cstdio>
#include <cstdlib>

#include "scheduling/simulation.h"

using namespace seagull;

namespace {

void PrintCohort(const char* label, const ImpactReport& impact) {
  if (impact.backups == 0) {
    std::printf("%-16s %8s\n", label, "(none)");
    return;
  }
  std::printf("%-16s %8lld %9.1f%% %12.1f%% %10.1f%% %11.1f\n", label,
              static_cast<long long>(impact.backups),
              100.0 * impact.FractionMoved(),
              100.0 * impact.FractionDefaultLl(),
              100.0 * impact.FractionIncorrect(),
              impact.improved_minutes / 60.0);
}

}  // namespace

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.3;
  int weeks = argc > 2 ? std::atoi(argv[2]) : 5;

  SimulationOptions options;
  options.regions = MakeEvaluationRegions(scale, 2026);
  for (auto& region : options.regions) region.weeks = weeks;
  options.model_name = "persistent_prev_day";
  options.threads = 8;

  std::printf("Seagull backup scheduling: %zu regions, %d weeks, scale %.2f\n",
              options.regions.size(), weeks, scale);
  for (const auto& region : options.regions) {
    std::printf("  %-12s %6d servers\n", region.name.c_str(),
                region.num_servers);
  }

  auto result = RunSimulation(options);
  if (!result.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\n--- pipeline runs ---\n");
  for (const auto& region : result->regions) {
    int64_t ok = 0;
    for (const auto& run : region.runs) {
      if (run.success) ++ok;
    }
    std::printf("%-12s: %lld/%zu runs ok, %lld backups, %lld moved, "
                "%zu alerts\n",
                region.region.c_str(), static_cast<long long>(ok),
                region.runs.size(),
                static_cast<long long>(region.backups_scheduled),
                static_cast<long long>(region.backups_moved),
                region.alerts.size());
    for (const auto& alert : region.alerts) {
      std::printf("  ALERT [%s] %s\n", alert.rule.c_str(),
                  alert.message.c_str());
    }
  }

  std::printf("\n--- impact by cohort (Figure 13(a)) ---\n");
  std::printf("%-16s %8s %10s %13s %11s %12s\n", "cohort", "backups",
              "moved-LL", "default=LL", "incorrect", "impr.hours");
  PrintCohort("all", result->impact);
  PrintCohort("stable", result->impact_stable);
  PrintCohort("daily", result->impact_daily);
  PrintCohort("weekly", result->impact_weekly);
  PrintCohort("no-pattern", result->impact_no_pattern);

  std::printf("\n--- dashboard ---\n%s\n", result->dashboard_text.c_str());
  return 0;
}
