/// \file autoscale_scenario.cpp
/// \brief The second Seagull use case (Appendix A): preemptive auto-scale
/// of SQL databases.
///
/// Classifies a simulated SQL fleet (Definition 10), compares forecast
/// models on the appendix's Mean NRMSE / MASE metrics, and closes the
/// loop the appendix motivates: a forecast-driven capacity policy
/// against static peak provisioning, measured in SLO violations and
/// wasted capacity.
///
/// Usage: autoscale_scenario [num_databases]

#include <cstdio>
#include <cstdlib>

#include "autoscale/classify.h"
#include "autoscale/eval.h"
#include "autoscale/policy.h"
#include "forecast/persistent.h"

using namespace seagull;

int main(int argc, char** argv) {
  int num_databases = argc > 1 ? std::atoi(argv[1]) : 80;

  SqlFleetConfig config;
  config.num_databases = num_databases;
  config.weeks = 4;
  config.seed = 9090;
  SqlFleet fleet = SqlFleet::Generate(config);

  // --- A.1: classification ---
  int64_t stable = 0;
  for (const auto& db : fleet.databases()) {
    LoadSeries load = fleet.Load(db, 0, 4 * kMinutesPerWeek);
    if (ClassifySqlDatabase(load, 0, 4 * kMinutesPerWeek).stable) ++stable;
  }
  std::printf("SQL fleet: %d databases, %.1f%% stable (paper: 19.36%%)\n\n",
              num_databases,
              100.0 * static_cast<double>(stable) /
                  static_cast<double>(fleet.size()));

  // --- A.3: model accuracy ---
  AutoscaleEvalOptions eval_options;
  eval_options.models = {"persistent_prev_day", "feedforward", "additive"};
  auto results = EvaluateAutoscaleModels(fleet, eval_options);
  if (!results.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }
  std::printf("%-22s %12s %10s %12s\n", "model", "mean NRMSE", "MASE",
              "train ms");
  for (const auto& r : *results) {
    std::printf("%-22s %12.3f %10.3f %12.1f\n", r.model.c_str(),
                r.mean_nrmse, r.mean_mase, r.train_millis);
  }

  // --- the auto-scale loop itself ---
  PersistentForecast model(PersistentVariant::kPreviousDay);
  AutoscalePolicy policy;
  const MinuteStamp day = 3 * kMinutesPerWeek;  // first day of week 3
  double dyn_waste = 0, dyn_viol = 0, fix_waste = 0, fix_viol = 0;
  int64_t counted = 0;
  for (const auto& db : fleet.databases()) {
    LoadSeries history = fleet.Load(db, 0, day);
    LoadSeries truth = fleet.Load(db, day, day + kMinutesPerDay);
    auto dynamic = SimulateAutoscaleDay(model, history, truth, day, policy,
                                        db.profile.server_id);
    if (!dynamic.ok()) continue;
    AutoscaleOutcome fixed =
        StaticProvisionDay(history, truth, day, policy,
                           db.profile.server_id);
    dyn_waste += dynamic->mean_waste;
    dyn_viol += dynamic->ViolationRate();
    fix_waste += fixed.mean_waste;
    fix_viol += fixed.ViolationRate();
    ++counted;
  }
  if (counted > 0) {
    double n = static_cast<double>(counted);
    std::printf("\nPreemptive auto-scale vs static peak provisioning "
                "(%lld database-days):\n",
                static_cast<long long>(counted));
    std::printf("  %-22s %14s %16s\n", "policy", "violations",
                "wasted capacity");
    std::printf("  %-22s %13.2f%% %15.1fpp\n", "forecast-driven",
                100.0 * dyn_viol / n, dyn_waste / n);
    std::printf("  %-22s %13.2f%% %15.1fpp\n", "static peak",
                100.0 * fix_viol / n, fix_waste / n);
    std::printf("\n(§6.2: 96.3%% of servers never reach capacity — the "
                "headroom this policy reclaims.)\n");
  }
  return 0;
}
