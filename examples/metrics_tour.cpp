/// \file metrics_tour.cpp
/// \brief A guided tour of the paper's metric definitions (Figures 2 and
/// 4-10) on single synthetic servers, with ASCII sparklines.
///
/// Shows: the asymmetric +10/−5 acceptable error bound and bucket ratio
/// (Definitions 1-2, Figure 2); stable / daily / weekly / no-pattern
/// servers (Definitions 4-6, Figures 4-7); and the two orthogonal
/// low-load metrics (Definitions 7-8, Figures 8-10).

#include <cmath>
#include <cstdio>
#include <string>

#include "common/random.h"
#include "metrics/bucket_ratio.h"
#include "metrics/classify.h"
#include "metrics/ll_window.h"
#include "telemetry/load_generator.h"

using namespace seagull;

namespace {

/// Renders a day of load as a coarse sparkline (one char per 30 min).
std::string Sparkline(const LoadSeries& day) {
  static const char* kLevels = " .:-=+*#%@";
  std::string out;
  for (MinuteStamp t = day.start(); t < day.end(); t += 30) {
    double v = day.MeanInRange(t, t + 30);
    if (IsMissing(v)) {
      out += '?';
      continue;
    }
    int idx = static_cast<int>(v / 10.0);
    if (idx < 0) idx = 0;
    if (idx > 9) idx = 9;
    out += kLevels[idx];
  }
  return out;
}

ServerProfile BaseProfile(ServerArchetype archetype, uint64_t seed) {
  ServerProfile p;
  p.archetype = archetype;
  p.server_id = ServerArchetypeName(archetype);
  p.created_at = 0;
  p.deleted_at = 4 * kMinutesPerWeek;
  p.base_load = 18.0;
  p.noise_sigma = 1.2;
  p.seed = seed;
  if (archetype != ServerArchetype::kStable) {
    p.bump_center = {10.5 * 60, 16.0 * 60};
    p.bump_width = {110.0, 140.0};
    p.bump_amplitude = {32.0, 22.0};
  }
  if (archetype == ServerArchetype::kWeeklyPattern) {
    p.day_scale = {1.0, 1.05, 0.95, 1.0, 1.1, 0.15, 0.1};
  }
  if (archetype == ServerArchetype::kNoPattern) {
    p.bump_amplitude = {10.0, 7.0};
    p.ou_theta = 0.04;
    p.ou_sigma = 0.5;
    p.burst_rate_per_day = 1.5;
    p.burst_magnitude = 18.0;
  }
  return p;
}

void ShowClassification(ServerArchetype archetype, uint64_t seed) {
  ServerProfile p = BaseProfile(archetype, seed);
  LoadSeries load = GenerateLoad(p, 0, 4 * kMinutesPerWeek);
  ClassificationResult r = ClassifyServer(load, p.created_at, p.deleted_at,
                                          0, 4 * kMinutesPerWeek);
  std::printf("\n%s server (Figure %s):\n", ServerArchetypeName(archetype),
              archetype == ServerArchetype::kStable ? "4"
              : archetype == ServerArchetype::kDailyPattern ? "5"
              : archetype == ServerArchetype::kWeeklyPattern ? "6" : "7");
  for (int64_t d = 7; d < 10; ++d) {
    std::printf("  day %lld (%s): |%s|\n", static_cast<long long>(d),
                DayOfWeekName(DayOfWeekOf(d * kMinutesPerDay)),
                Sparkline(load.SliceDay(d)).c_str());
  }
  std::printf("  classified: %-14s stable-ratio %.2f  daily-worst %.2f  "
              "weekly-worst %.2f\n",
              ServerClassName(r.server_class), r.stable_ratio,
              r.daily_worst_ratio, r.weekly_worst_ratio);
}

}  // namespace

int main() {
  std::printf("=== Definitions 1-2: the acceptable error bound ===\n");
  // Figure 2: a prediction that looks close but only hits 75% of points.
  {
    Rng rng(3);
    std::vector<double> truth_v(288, 40.0), pred_v(288);
    for (int i = 0; i < 288; ++i) {
      // One quarter of the predictions undershoot by 12 points (beyond
      // the -5 under-prediction bound).
      pred_v[static_cast<size_t>(i)] =
          (i % 4 == 0) ? 28.0 : 40.0 + rng.Gaussian(0.0, 1.0);
    }
    LoadSeries truth =
        std::move(LoadSeries::Make(0, 5, std::move(truth_v))).ValueOrDie();
    LoadSeries pred =
        std::move(LoadSeries::Make(0, 5, std::move(pred_v))).ValueOrDie();
    BucketRatioResult bucket = BucketRatio(pred, truth);
    std::printf("bucket ratio %.0f%% -> %s (Definition 2 needs >= 90%%; "
                "the bound tolerates +10 over / -5 under)\n",
                100.0 * bucket.ratio,
                bucket.IsAccurate(AccuracyConfig{}) ? "accurate"
                                                    : "INACCURATE");
  }

  std::printf("\n=== Definitions 4-6: server classes ===");
  ShowClassification(ServerArchetype::kStable, 11);
  ShowClassification(ServerArchetype::kDailyPattern, 12);
  ShowClassification(ServerArchetype::kWeeklyPattern, 13);
  ShowClassification(ServerArchetype::kNoPattern, 14);

  std::printf("\n=== Definitions 7-8: the two orthogonal LL metrics ===\n");
  ServerProfile daily = BaseProfile(ServerArchetype::kDailyPattern, 15);
  LoadSeries truth = GenerateLoad(daily, 0, 8 * kMinutesPerDay);
  LoadSeries yesterday =
      truth.SliceDay(6).ShiftedTo(7 * kMinutesPerDay);
  LowLoadEvaluation eval =
      EvaluateLowLoad(yesterday, truth, 7, /*backup duration=*/120);
  std::printf("day 7:      |%s|\n", Sparkline(truth.SliceDay(7)).c_str());
  std::printf("true LL window      %s - %s (avg %.1f%%)\n",
              FormatMinute(eval.true_window.start).c_str(),
              FormatTimeOfDay(MinuteOfDay(eval.true_window.end())).c_str(),
              eval.true_window.average_load);
  std::printf("predicted LL window %s - %s (avg %.1f%%)\n",
              FormatMinute(eval.predicted_window.start).c_str(),
              FormatTimeOfDay(MinuteOfDay(eval.predicted_window.end()))
                  .c_str(),
              eval.predicted_window.average_load);
  std::printf("window chosen correctly: %s | load accurate in window: %s "
              "(bucket %.0f%%)\n",
              eval.window_correct ? "yes" : "no",
              eval.load_accurate ? "yes" : "no",
              100.0 * eval.window_bucket.ratio);
  std::printf("\nFigures 9/10 show these two verdicts are orthogonal: "
              "either can hold without the other — only both together "
              "make a server predictable (Definition 9).\n");
  return 0;
}
