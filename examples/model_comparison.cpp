/// \file model_comparison.cpp
/// \brief Compares every registered forecast-model family on the
/// unstable-no-pattern cohort with the §5.3 protocol, the decision the
/// paper's Section 5 is about: is a complex ML model worth it over the
/// persistent-forecast heuristic?
///
/// Usage: model_comparison [num_servers] [include_arima=0|1]

#include <cstdio>
#include <cstdlib>

#include "scheduling/model_eval.h"

using namespace seagull;

int main(int argc, char** argv) {
  int num_servers = argc > 1 ? std::atoi(argv[1]) : 40;
  bool include_arima = argc > 2 && std::atoi(argv[2]) != 0;

  RegionConfig config;
  config.name = "compare";
  config.num_servers = num_servers;
  config.weeks = 5;
  config.seed = 4242;
  // The cohort ML models are applied to (§5.3.3): long-lived, unstable,
  // no recognizable pattern.
  config.mix.short_lived = 0.0;
  config.mix.stable = 0.0;
  config.mix.daily = 0.0;
  config.mix.weekly = 0.0;
  config.mix.no_pattern = 1.0;
  Fleet fleet = Fleet::Generate(config);

  std::vector<std::string> models = {
      "persistent_prev_day", "persistent_prev_eq_day",
      "persistent_week_avg", "ssa", "feedforward", "additive"};
  if (include_arima) models.push_back("arima");

  ModelEvalOptions options;
  options.target_week = 4;

  std::printf("Comparing %zu model families on %d unstable servers "
              "(3 backup days each)\n\n",
              models.size(), num_servers);
  std::printf("%-24s %10s %11s %12s %11s %11s\n", "model", "LL-win %",
              "load-acc %", "predict %", "train ms", "infer ms");
  for (const auto& model : models) {
    ModelEvalOptions per_model = options;
    if (model == "arima") per_model.max_servers = 5;
    auto result = EvaluateModelOnFleet(fleet, model, per_model);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", model.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-24s %9.1f%% %10.1f%% %11.1f%% %11.1f %11.1f\n",
                model.c_str(), result->PctWindowsCorrect(),
                result->PctLoadsAccurate(), result->PctPredictable(),
                result->train_millis, result->inference_millis);
  }
  std::printf(
      "\nThe paper's conclusion (§5.4): the accuracy of the ML models is "
      "not significantly higher than persistent forecast, which needs no "
      "training — so persistent forecast (previous day) ships.\n");
  return 0;
}
