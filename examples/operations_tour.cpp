/// \file operations_tour.cpp
/// \brief The operational story of §1: "Seagull continually re-evaluates
/// accuracy of predictions, fallback to previously known good models and
/// triggers alerts as appropriate."
///
/// A scripted four-act scenario against one region:
///   act 1 — healthy weekly run (persistent forecast) deploys v1;
///   act 2 — a bad model family is configured; accuracy collapses, the
///           tracking module flips the active pointer back to v1 and an
///           alert fires;
///   act 3 — the next week's telemetry extraction is missing; the run
///           fails with an alert and the region stays due (catch-up);
///   act 4 — data restored, the region catches up and the dashboard
///           shows the full history.

#include <cstdio>

#include "forecast/model.h"
#include "pipeline/deployment.h"
#include "pipeline/scheduler.h"
#include "telemetry/emitter.h"

using namespace seagull;

namespace {

/// A deliberately terrible forecaster: predicts a constant absurd load.
/// Registered under its own family name so deployment/tracking treat it
/// like any other model.
class DoomedModel final : public ForecastModel {
 public:
  std::string name() const override { return "doomed"; }
  bool requires_training() const override { return false; }
  Status Fit(const LoadSeries&) override { return Status::OK(); }
  Result<LoadSeries> Forecast(const LoadSeries& recent, MinuteStamp start,
                              int64_t horizon_minutes) const override {
    int64_t interval = recent.empty() ? kServerIntervalMinutes
                                      : recent.interval_minutes();
    if (start % interval != 0 || horizon_minutes % interval != 0) {
      return Status::Invalid("misaligned");
    }
    std::vector<double> values(
        static_cast<size_t>(horizon_minutes / interval), 100.0);
    return LoadSeries::Make(start, interval, std::move(values));
  }
  Result<Json> Serialize() const override {
    Json doc = Json::MakeObject();
    doc["model"] = name();
    return doc;
  }
  Status Deserialize(const Json&) override { return Status::OK(); }
};

void PrintRun(const char* act, const PipelineScheduler::ScheduledRun& run) {
  std::printf("%s: %s", act,
              run.report.timings.empty()
                  ? "skipped (not due)"
                  : (run.report.success ? "ok" : "FAILED"));
  if (!run.report.success && !run.report.failure.empty()) {
    std::printf(" — %s", run.report.failure.c_str());
  }
  std::printf("\n");
  for (const auto& alert : run.alerts) {
    std::printf("   ALERT [%s] %s\n", alert.rule.c_str(),
                alert.message.c_str());
  }
}

}  // namespace

int main() {
  ModelFactory::Global().Register(
      "doomed", [] { return std::make_unique<DoomedModel>(); });

  auto lake = LakeStore::OpenTemporary("ops-tour");
  lake.status().Abort();
  DocStore docs;

  RegionConfig config;
  config.name = "ops";
  config.num_servers = 80;
  config.weeks = 6;
  config.seed = 99;
  Fleet fleet = Fleet::Generate(config);

  Pipeline pipeline = Pipeline::Standard();
  PipelineScheduler scheduler(&pipeline, &*lake, &docs);
  PipelineContext good;
  good.model_name = "persistent_prev_day";
  PipelineContext bad;
  bad.model_name = "doomed";

  // --- act 1: healthy run ---
  lake->Put(LakeStore::TelemetryKey("ops", 2), ExtractWeekCsvText(fleet, 2))
      .Abort();
  auto run1 = scheduler.RunIfDue("ops", 2, good);
  PrintRun("act 1 (healthy, deploys v1)", run1);
  std::printf("   active version: %lld\n",
              static_cast<long long>(
                  ActiveVersion(&docs, "ops").ValueOr(-1)));

  // --- act 2: a bad model ships; tracking falls back ---
  lake->Put(LakeStore::TelemetryKey("ops", 3), ExtractWeekCsvText(fleet, 3))
      .Abort();
  auto run2 = scheduler.RunIfDue("ops", 3, bad);
  PrintRun("act 2 (doomed model, v2)", run2);
  int64_t active = ActiveVersion(&docs, "ops").ValueOr(-1);
  std::printf("   active version after tracking: %lld %s\n",
              static_cast<long long>(active),
              active == 1 ? "(fell back to the known-good v1)" : "");

  // --- act 3: missing telemetry ---
  auto run3 = scheduler.RunIfDue("ops", 4, good);
  PrintRun("act 3 (missing extraction)", run3);
  std::printf("   region still due for week 4: %s\n",
              scheduler.IsDue("ops", 4) ? "yes (catch-up)" : "no");

  // --- act 4: catch-up after the data arrives ---
  lake->Put(LakeStore::TelemetryKey("ops", 4), ExtractWeekCsvText(fleet, 4))
      .Abort();
  auto run4 = scheduler.RunIfDue("ops", 4, good);
  PrintRun("act 4 (catch-up)", run4);

  Dashboard dashboard(&docs);
  std::printf("\n--- dashboard ---\n%s", dashboard.Render().c_str());
  IncidentManager incidents(&docs);
  std::printf("\n--- incident history ---\n");
  for (const auto& doc : incidents.History("ops")) {
    std::printf("[%s] week %lld %s: %s\n",
                doc.body.GetString("severity").ValueOr("?").c_str(),
                static_cast<long long>(
                    doc.body.GetNumber("week").ValueOr(-1)),
                doc.body.GetString("module").ValueOr("?").c_str(),
                doc.body.GetString("message").ValueOr("").c_str());
  }
  return 0;
}
