file(REMOVE_RECURSE
  "libseagull_parallel.a"
)
