file(REMOVE_RECURSE
  "CMakeFiles/seagull_parallel.dir/thread_pool.cc.o"
  "CMakeFiles/seagull_parallel.dir/thread_pool.cc.o.d"
  "libseagull_parallel.a"
  "libseagull_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seagull_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
