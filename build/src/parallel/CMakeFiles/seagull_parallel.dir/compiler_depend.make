# Empty compiler generated dependencies file for seagull_parallel.
# This may be replaced when dependencies are built.
