
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scheduling/backup_engine.cc" "src/scheduling/CMakeFiles/seagull_scheduling.dir/backup_engine.cc.o" "gcc" "src/scheduling/CMakeFiles/seagull_scheduling.dir/backup_engine.cc.o.d"
  "/root/repo/src/scheduling/backup_scheduler.cc" "src/scheduling/CMakeFiles/seagull_scheduling.dir/backup_scheduler.cc.o" "gcc" "src/scheduling/CMakeFiles/seagull_scheduling.dir/backup_scheduler.cc.o.d"
  "/root/repo/src/scheduling/backup_service.cc" "src/scheduling/CMakeFiles/seagull_scheduling.dir/backup_service.cc.o" "gcc" "src/scheduling/CMakeFiles/seagull_scheduling.dir/backup_service.cc.o.d"
  "/root/repo/src/scheduling/day_optimizer.cc" "src/scheduling/CMakeFiles/seagull_scheduling.dir/day_optimizer.cc.o" "gcc" "src/scheduling/CMakeFiles/seagull_scheduling.dir/day_optimizer.cc.o.d"
  "/root/repo/src/scheduling/impact.cc" "src/scheduling/CMakeFiles/seagull_scheduling.dir/impact.cc.o" "gcc" "src/scheduling/CMakeFiles/seagull_scheduling.dir/impact.cc.o.d"
  "/root/repo/src/scheduling/model_eval.cc" "src/scheduling/CMakeFiles/seagull_scheduling.dir/model_eval.cc.o" "gcc" "src/scheduling/CMakeFiles/seagull_scheduling.dir/model_eval.cc.o.d"
  "/root/repo/src/scheduling/service_fabric.cc" "src/scheduling/CMakeFiles/seagull_scheduling.dir/service_fabric.cc.o" "gcc" "src/scheduling/CMakeFiles/seagull_scheduling.dir/service_fabric.cc.o.d"
  "/root/repo/src/scheduling/simulation.cc" "src/scheduling/CMakeFiles/seagull_scheduling.dir/simulation.cc.o" "gcc" "src/scheduling/CMakeFiles/seagull_scheduling.dir/simulation.cc.o.d"
  "/root/repo/src/scheduling/window_advisor.cc" "src/scheduling/CMakeFiles/seagull_scheduling.dir/window_advisor.cc.o" "gcc" "src/scheduling/CMakeFiles/seagull_scheduling.dir/window_advisor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/seagull_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/seagull_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/seagull_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/seagull_store.dir/DependInfo.cmake"
  "/root/repo/build/src/forecast/CMakeFiles/seagull_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/seagull_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/seagull_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seagull_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
