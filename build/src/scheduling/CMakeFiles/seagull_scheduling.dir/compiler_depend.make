# Empty compiler generated dependencies file for seagull_scheduling.
# This may be replaced when dependencies are built.
