file(REMOVE_RECURSE
  "CMakeFiles/seagull_scheduling.dir/backup_engine.cc.o"
  "CMakeFiles/seagull_scheduling.dir/backup_engine.cc.o.d"
  "CMakeFiles/seagull_scheduling.dir/backup_scheduler.cc.o"
  "CMakeFiles/seagull_scheduling.dir/backup_scheduler.cc.o.d"
  "CMakeFiles/seagull_scheduling.dir/backup_service.cc.o"
  "CMakeFiles/seagull_scheduling.dir/backup_service.cc.o.d"
  "CMakeFiles/seagull_scheduling.dir/day_optimizer.cc.o"
  "CMakeFiles/seagull_scheduling.dir/day_optimizer.cc.o.d"
  "CMakeFiles/seagull_scheduling.dir/impact.cc.o"
  "CMakeFiles/seagull_scheduling.dir/impact.cc.o.d"
  "CMakeFiles/seagull_scheduling.dir/model_eval.cc.o"
  "CMakeFiles/seagull_scheduling.dir/model_eval.cc.o.d"
  "CMakeFiles/seagull_scheduling.dir/service_fabric.cc.o"
  "CMakeFiles/seagull_scheduling.dir/service_fabric.cc.o.d"
  "CMakeFiles/seagull_scheduling.dir/simulation.cc.o"
  "CMakeFiles/seagull_scheduling.dir/simulation.cc.o.d"
  "CMakeFiles/seagull_scheduling.dir/window_advisor.cc.o"
  "CMakeFiles/seagull_scheduling.dir/window_advisor.cc.o.d"
  "libseagull_scheduling.a"
  "libseagull_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seagull_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
