file(REMOVE_RECURSE
  "libseagull_scheduling.a"
)
