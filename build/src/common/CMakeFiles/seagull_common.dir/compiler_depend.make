# Empty compiler generated dependencies file for seagull_common.
# This may be replaced when dependencies are built.
