file(REMOVE_RECURSE
  "CMakeFiles/seagull_common.dir/csv.cc.o"
  "CMakeFiles/seagull_common.dir/csv.cc.o.d"
  "CMakeFiles/seagull_common.dir/json.cc.o"
  "CMakeFiles/seagull_common.dir/json.cc.o.d"
  "CMakeFiles/seagull_common.dir/logging.cc.o"
  "CMakeFiles/seagull_common.dir/logging.cc.o.d"
  "CMakeFiles/seagull_common.dir/random.cc.o"
  "CMakeFiles/seagull_common.dir/random.cc.o.d"
  "CMakeFiles/seagull_common.dir/status.cc.o"
  "CMakeFiles/seagull_common.dir/status.cc.o.d"
  "CMakeFiles/seagull_common.dir/strings.cc.o"
  "CMakeFiles/seagull_common.dir/strings.cc.o.d"
  "CMakeFiles/seagull_common.dir/time.cc.o"
  "CMakeFiles/seagull_common.dir/time.cc.o.d"
  "libseagull_common.a"
  "libseagull_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seagull_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
