file(REMOVE_RECURSE
  "libseagull_common.a"
)
