# Empty compiler generated dependencies file for seagull_forecast.
# This may be replaced when dependencies are built.
