file(REMOVE_RECURSE
  "CMakeFiles/seagull_forecast.dir/additive.cc.o"
  "CMakeFiles/seagull_forecast.dir/additive.cc.o.d"
  "CMakeFiles/seagull_forecast.dir/arima.cc.o"
  "CMakeFiles/seagull_forecast.dir/arima.cc.o.d"
  "CMakeFiles/seagull_forecast.dir/feedforward.cc.o"
  "CMakeFiles/seagull_forecast.dir/feedforward.cc.o.d"
  "CMakeFiles/seagull_forecast.dir/linalg.cc.o"
  "CMakeFiles/seagull_forecast.dir/linalg.cc.o.d"
  "CMakeFiles/seagull_forecast.dir/model.cc.o"
  "CMakeFiles/seagull_forecast.dir/model.cc.o.d"
  "CMakeFiles/seagull_forecast.dir/persistent.cc.o"
  "CMakeFiles/seagull_forecast.dir/persistent.cc.o.d"
  "CMakeFiles/seagull_forecast.dir/routed.cc.o"
  "CMakeFiles/seagull_forecast.dir/routed.cc.o.d"
  "CMakeFiles/seagull_forecast.dir/ssa.cc.o"
  "CMakeFiles/seagull_forecast.dir/ssa.cc.o.d"
  "libseagull_forecast.a"
  "libseagull_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seagull_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
