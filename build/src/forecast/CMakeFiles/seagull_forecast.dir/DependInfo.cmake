
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forecast/additive.cc" "src/forecast/CMakeFiles/seagull_forecast.dir/additive.cc.o" "gcc" "src/forecast/CMakeFiles/seagull_forecast.dir/additive.cc.o.d"
  "/root/repo/src/forecast/arima.cc" "src/forecast/CMakeFiles/seagull_forecast.dir/arima.cc.o" "gcc" "src/forecast/CMakeFiles/seagull_forecast.dir/arima.cc.o.d"
  "/root/repo/src/forecast/feedforward.cc" "src/forecast/CMakeFiles/seagull_forecast.dir/feedforward.cc.o" "gcc" "src/forecast/CMakeFiles/seagull_forecast.dir/feedforward.cc.o.d"
  "/root/repo/src/forecast/linalg.cc" "src/forecast/CMakeFiles/seagull_forecast.dir/linalg.cc.o" "gcc" "src/forecast/CMakeFiles/seagull_forecast.dir/linalg.cc.o.d"
  "/root/repo/src/forecast/model.cc" "src/forecast/CMakeFiles/seagull_forecast.dir/model.cc.o" "gcc" "src/forecast/CMakeFiles/seagull_forecast.dir/model.cc.o.d"
  "/root/repo/src/forecast/persistent.cc" "src/forecast/CMakeFiles/seagull_forecast.dir/persistent.cc.o" "gcc" "src/forecast/CMakeFiles/seagull_forecast.dir/persistent.cc.o.d"
  "/root/repo/src/forecast/routed.cc" "src/forecast/CMakeFiles/seagull_forecast.dir/routed.cc.o" "gcc" "src/forecast/CMakeFiles/seagull_forecast.dir/routed.cc.o.d"
  "/root/repo/src/forecast/ssa.cc" "src/forecast/CMakeFiles/seagull_forecast.dir/ssa.cc.o" "gcc" "src/forecast/CMakeFiles/seagull_forecast.dir/ssa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/seagull_common.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/seagull_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/seagull_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
