file(REMOVE_RECURSE
  "libseagull_forecast.a"
)
