file(REMOVE_RECURSE
  "libseagull_store.a"
)
