# Empty dependencies file for seagull_store.
# This may be replaced when dependencies are built.
