file(REMOVE_RECURSE
  "CMakeFiles/seagull_store.dir/doc_store.cc.o"
  "CMakeFiles/seagull_store.dir/doc_store.cc.o.d"
  "CMakeFiles/seagull_store.dir/lake_store.cc.o"
  "CMakeFiles/seagull_store.dir/lake_store.cc.o.d"
  "libseagull_store.a"
  "libseagull_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seagull_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
