file(REMOVE_RECURSE
  "libseagull_telemetry.a"
)
