# Empty compiler generated dependencies file for seagull_telemetry.
# This may be replaced when dependencies are built.
