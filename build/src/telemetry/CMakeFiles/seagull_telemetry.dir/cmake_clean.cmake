file(REMOVE_RECURSE
  "CMakeFiles/seagull_telemetry.dir/azure_trace.cc.o"
  "CMakeFiles/seagull_telemetry.dir/azure_trace.cc.o.d"
  "CMakeFiles/seagull_telemetry.dir/emitter.cc.o"
  "CMakeFiles/seagull_telemetry.dir/emitter.cc.o.d"
  "CMakeFiles/seagull_telemetry.dir/fleet.cc.o"
  "CMakeFiles/seagull_telemetry.dir/fleet.cc.o.d"
  "CMakeFiles/seagull_telemetry.dir/load_generator.cc.o"
  "CMakeFiles/seagull_telemetry.dir/load_generator.cc.o.d"
  "CMakeFiles/seagull_telemetry.dir/records.cc.o"
  "CMakeFiles/seagull_telemetry.dir/records.cc.o.d"
  "CMakeFiles/seagull_telemetry.dir/server_profile.cc.o"
  "CMakeFiles/seagull_telemetry.dir/server_profile.cc.o.d"
  "CMakeFiles/seagull_telemetry.dir/signals.cc.o"
  "CMakeFiles/seagull_telemetry.dir/signals.cc.o.d"
  "libseagull_telemetry.a"
  "libseagull_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seagull_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
