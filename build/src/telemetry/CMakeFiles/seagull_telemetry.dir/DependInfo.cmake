
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/azure_trace.cc" "src/telemetry/CMakeFiles/seagull_telemetry.dir/azure_trace.cc.o" "gcc" "src/telemetry/CMakeFiles/seagull_telemetry.dir/azure_trace.cc.o.d"
  "/root/repo/src/telemetry/emitter.cc" "src/telemetry/CMakeFiles/seagull_telemetry.dir/emitter.cc.o" "gcc" "src/telemetry/CMakeFiles/seagull_telemetry.dir/emitter.cc.o.d"
  "/root/repo/src/telemetry/fleet.cc" "src/telemetry/CMakeFiles/seagull_telemetry.dir/fleet.cc.o" "gcc" "src/telemetry/CMakeFiles/seagull_telemetry.dir/fleet.cc.o.d"
  "/root/repo/src/telemetry/load_generator.cc" "src/telemetry/CMakeFiles/seagull_telemetry.dir/load_generator.cc.o" "gcc" "src/telemetry/CMakeFiles/seagull_telemetry.dir/load_generator.cc.o.d"
  "/root/repo/src/telemetry/records.cc" "src/telemetry/CMakeFiles/seagull_telemetry.dir/records.cc.o" "gcc" "src/telemetry/CMakeFiles/seagull_telemetry.dir/records.cc.o.d"
  "/root/repo/src/telemetry/server_profile.cc" "src/telemetry/CMakeFiles/seagull_telemetry.dir/server_profile.cc.o" "gcc" "src/telemetry/CMakeFiles/seagull_telemetry.dir/server_profile.cc.o.d"
  "/root/repo/src/telemetry/signals.cc" "src/telemetry/CMakeFiles/seagull_telemetry.dir/signals.cc.o" "gcc" "src/telemetry/CMakeFiles/seagull_telemetry.dir/signals.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/seagull_common.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/seagull_timeseries.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
