
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/bucket_ratio.cc" "src/metrics/CMakeFiles/seagull_metrics.dir/bucket_ratio.cc.o" "gcc" "src/metrics/CMakeFiles/seagull_metrics.dir/bucket_ratio.cc.o.d"
  "/root/repo/src/metrics/classify.cc" "src/metrics/CMakeFiles/seagull_metrics.dir/classify.cc.o" "gcc" "src/metrics/CMakeFiles/seagull_metrics.dir/classify.cc.o.d"
  "/root/repo/src/metrics/ll_window.cc" "src/metrics/CMakeFiles/seagull_metrics.dir/ll_window.cc.o" "gcc" "src/metrics/CMakeFiles/seagull_metrics.dir/ll_window.cc.o.d"
  "/root/repo/src/metrics/predictable.cc" "src/metrics/CMakeFiles/seagull_metrics.dir/predictable.cc.o" "gcc" "src/metrics/CMakeFiles/seagull_metrics.dir/predictable.cc.o.d"
  "/root/repo/src/metrics/standard.cc" "src/metrics/CMakeFiles/seagull_metrics.dir/standard.cc.o" "gcc" "src/metrics/CMakeFiles/seagull_metrics.dir/standard.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/seagull_common.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/seagull_timeseries.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
