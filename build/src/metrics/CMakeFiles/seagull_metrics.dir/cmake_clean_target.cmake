file(REMOVE_RECURSE
  "libseagull_metrics.a"
)
