# Empty dependencies file for seagull_metrics.
# This may be replaced when dependencies are built.
