file(REMOVE_RECURSE
  "CMakeFiles/seagull_metrics.dir/bucket_ratio.cc.o"
  "CMakeFiles/seagull_metrics.dir/bucket_ratio.cc.o.d"
  "CMakeFiles/seagull_metrics.dir/classify.cc.o"
  "CMakeFiles/seagull_metrics.dir/classify.cc.o.d"
  "CMakeFiles/seagull_metrics.dir/ll_window.cc.o"
  "CMakeFiles/seagull_metrics.dir/ll_window.cc.o.d"
  "CMakeFiles/seagull_metrics.dir/predictable.cc.o"
  "CMakeFiles/seagull_metrics.dir/predictable.cc.o.d"
  "CMakeFiles/seagull_metrics.dir/standard.cc.o"
  "CMakeFiles/seagull_metrics.dir/standard.cc.o.d"
  "libseagull_metrics.a"
  "libseagull_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seagull_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
