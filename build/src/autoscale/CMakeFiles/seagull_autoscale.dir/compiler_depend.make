# Empty compiler generated dependencies file for seagull_autoscale.
# This may be replaced when dependencies are built.
