file(REMOVE_RECURSE
  "CMakeFiles/seagull_autoscale.dir/classify.cc.o"
  "CMakeFiles/seagull_autoscale.dir/classify.cc.o.d"
  "CMakeFiles/seagull_autoscale.dir/eval.cc.o"
  "CMakeFiles/seagull_autoscale.dir/eval.cc.o.d"
  "CMakeFiles/seagull_autoscale.dir/overbooking.cc.o"
  "CMakeFiles/seagull_autoscale.dir/overbooking.cc.o.d"
  "CMakeFiles/seagull_autoscale.dir/policy.cc.o"
  "CMakeFiles/seagull_autoscale.dir/policy.cc.o.d"
  "CMakeFiles/seagull_autoscale.dir/sql_fleet.cc.o"
  "CMakeFiles/seagull_autoscale.dir/sql_fleet.cc.o.d"
  "libseagull_autoscale.a"
  "libseagull_autoscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seagull_autoscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
