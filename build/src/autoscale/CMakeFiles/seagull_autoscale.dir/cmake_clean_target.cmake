file(REMOVE_RECURSE
  "libseagull_autoscale.a"
)
