
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autoscale/classify.cc" "src/autoscale/CMakeFiles/seagull_autoscale.dir/classify.cc.o" "gcc" "src/autoscale/CMakeFiles/seagull_autoscale.dir/classify.cc.o.d"
  "/root/repo/src/autoscale/eval.cc" "src/autoscale/CMakeFiles/seagull_autoscale.dir/eval.cc.o" "gcc" "src/autoscale/CMakeFiles/seagull_autoscale.dir/eval.cc.o.d"
  "/root/repo/src/autoscale/overbooking.cc" "src/autoscale/CMakeFiles/seagull_autoscale.dir/overbooking.cc.o" "gcc" "src/autoscale/CMakeFiles/seagull_autoscale.dir/overbooking.cc.o.d"
  "/root/repo/src/autoscale/policy.cc" "src/autoscale/CMakeFiles/seagull_autoscale.dir/policy.cc.o" "gcc" "src/autoscale/CMakeFiles/seagull_autoscale.dir/policy.cc.o.d"
  "/root/repo/src/autoscale/sql_fleet.cc" "src/autoscale/CMakeFiles/seagull_autoscale.dir/sql_fleet.cc.o" "gcc" "src/autoscale/CMakeFiles/seagull_autoscale.dir/sql_fleet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/telemetry/CMakeFiles/seagull_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/forecast/CMakeFiles/seagull_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/seagull_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/seagull_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seagull_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
