file(REMOVE_RECURSE
  "libseagull_timeseries.a"
)
