
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timeseries/resample.cc" "src/timeseries/CMakeFiles/seagull_timeseries.dir/resample.cc.o" "gcc" "src/timeseries/CMakeFiles/seagull_timeseries.dir/resample.cc.o.d"
  "/root/repo/src/timeseries/series.cc" "src/timeseries/CMakeFiles/seagull_timeseries.dir/series.cc.o" "gcc" "src/timeseries/CMakeFiles/seagull_timeseries.dir/series.cc.o.d"
  "/root/repo/src/timeseries/stats.cc" "src/timeseries/CMakeFiles/seagull_timeseries.dir/stats.cc.o" "gcc" "src/timeseries/CMakeFiles/seagull_timeseries.dir/stats.cc.o.d"
  "/root/repo/src/timeseries/window.cc" "src/timeseries/CMakeFiles/seagull_timeseries.dir/window.cc.o" "gcc" "src/timeseries/CMakeFiles/seagull_timeseries.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/seagull_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
