file(REMOVE_RECURSE
  "CMakeFiles/seagull_timeseries.dir/resample.cc.o"
  "CMakeFiles/seagull_timeseries.dir/resample.cc.o.d"
  "CMakeFiles/seagull_timeseries.dir/series.cc.o"
  "CMakeFiles/seagull_timeseries.dir/series.cc.o.d"
  "CMakeFiles/seagull_timeseries.dir/stats.cc.o"
  "CMakeFiles/seagull_timeseries.dir/stats.cc.o.d"
  "CMakeFiles/seagull_timeseries.dir/window.cc.o"
  "CMakeFiles/seagull_timeseries.dir/window.cc.o.d"
  "libseagull_timeseries.a"
  "libseagull_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seagull_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
