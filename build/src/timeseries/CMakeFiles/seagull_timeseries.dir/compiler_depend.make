# Empty compiler generated dependencies file for seagull_timeseries.
# This may be replaced when dependencies are built.
