file(REMOVE_RECURSE
  "libseagull_pipeline.a"
)
