
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/accuracy.cc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/accuracy.cc.o" "gcc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/accuracy.cc.o.d"
  "/root/repo/src/pipeline/dashboard.cc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/dashboard.cc.o" "gcc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/dashboard.cc.o.d"
  "/root/repo/src/pipeline/deployment.cc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/deployment.cc.o" "gcc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/deployment.cc.o.d"
  "/root/repo/src/pipeline/features.cc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/features.cc.o" "gcc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/features.cc.o.d"
  "/root/repo/src/pipeline/incidents.cc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/incidents.cc.o" "gcc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/incidents.cc.o.d"
  "/root/repo/src/pipeline/inference.cc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/inference.cc.o" "gcc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/inference.cc.o.d"
  "/root/repo/src/pipeline/ingestion.cc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/ingestion.cc.o" "gcc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/ingestion.cc.o.d"
  "/root/repo/src/pipeline/pipeline.cc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/pipeline.cc.o" "gcc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/pipeline.cc.o.d"
  "/root/repo/src/pipeline/scheduler.cc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/scheduler.cc.o" "gcc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/scheduler.cc.o.d"
  "/root/repo/src/pipeline/serving.cc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/serving.cc.o" "gcc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/serving.cc.o.d"
  "/root/repo/src/pipeline/tracking.cc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/tracking.cc.o" "gcc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/tracking.cc.o.d"
  "/root/repo/src/pipeline/training.cc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/training.cc.o" "gcc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/training.cc.o.d"
  "/root/repo/src/pipeline/validation.cc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/validation.cc.o" "gcc" "src/pipeline/CMakeFiles/seagull_pipeline.dir/validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/seagull_common.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/seagull_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/seagull_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/seagull_store.dir/DependInfo.cmake"
  "/root/repo/build/src/forecast/CMakeFiles/seagull_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/seagull_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/seagull_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
