# Empty dependencies file for seagull_pipeline.
# This may be replaced when dependencies are built.
