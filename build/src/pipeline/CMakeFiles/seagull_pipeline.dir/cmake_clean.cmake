file(REMOVE_RECURSE
  "CMakeFiles/seagull_pipeline.dir/accuracy.cc.o"
  "CMakeFiles/seagull_pipeline.dir/accuracy.cc.o.d"
  "CMakeFiles/seagull_pipeline.dir/dashboard.cc.o"
  "CMakeFiles/seagull_pipeline.dir/dashboard.cc.o.d"
  "CMakeFiles/seagull_pipeline.dir/deployment.cc.o"
  "CMakeFiles/seagull_pipeline.dir/deployment.cc.o.d"
  "CMakeFiles/seagull_pipeline.dir/features.cc.o"
  "CMakeFiles/seagull_pipeline.dir/features.cc.o.d"
  "CMakeFiles/seagull_pipeline.dir/incidents.cc.o"
  "CMakeFiles/seagull_pipeline.dir/incidents.cc.o.d"
  "CMakeFiles/seagull_pipeline.dir/inference.cc.o"
  "CMakeFiles/seagull_pipeline.dir/inference.cc.o.d"
  "CMakeFiles/seagull_pipeline.dir/ingestion.cc.o"
  "CMakeFiles/seagull_pipeline.dir/ingestion.cc.o.d"
  "CMakeFiles/seagull_pipeline.dir/pipeline.cc.o"
  "CMakeFiles/seagull_pipeline.dir/pipeline.cc.o.d"
  "CMakeFiles/seagull_pipeline.dir/scheduler.cc.o"
  "CMakeFiles/seagull_pipeline.dir/scheduler.cc.o.d"
  "CMakeFiles/seagull_pipeline.dir/serving.cc.o"
  "CMakeFiles/seagull_pipeline.dir/serving.cc.o.d"
  "CMakeFiles/seagull_pipeline.dir/tracking.cc.o"
  "CMakeFiles/seagull_pipeline.dir/tracking.cc.o.d"
  "CMakeFiles/seagull_pipeline.dir/training.cc.o"
  "CMakeFiles/seagull_pipeline.dir/training.cc.o.d"
  "CMakeFiles/seagull_pipeline.dir/validation.cc.o"
  "CMakeFiles/seagull_pipeline.dir/validation.cc.o.d"
  "libseagull_pipeline.a"
  "libseagull_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seagull_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
