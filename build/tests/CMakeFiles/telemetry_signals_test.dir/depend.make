# Empty dependencies file for telemetry_signals_test.
# This may be replaced when dependencies are built.
