file(REMOVE_RECURSE
  "CMakeFiles/telemetry_signals_test.dir/telemetry_signals_test.cc.o"
  "CMakeFiles/telemetry_signals_test.dir/telemetry_signals_test.cc.o.d"
  "telemetry_signals_test"
  "telemetry_signals_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_signals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
