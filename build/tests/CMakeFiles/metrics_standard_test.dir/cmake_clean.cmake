file(REMOVE_RECURSE
  "CMakeFiles/metrics_standard_test.dir/metrics_standard_test.cc.o"
  "CMakeFiles/metrics_standard_test.dir/metrics_standard_test.cc.o.d"
  "metrics_standard_test"
  "metrics_standard_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_standard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
