# Empty dependencies file for metrics_standard_test.
# This may be replaced when dependencies are built.
