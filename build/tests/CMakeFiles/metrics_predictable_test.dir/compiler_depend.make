# Empty compiler generated dependencies file for metrics_predictable_test.
# This may be replaced when dependencies are built.
