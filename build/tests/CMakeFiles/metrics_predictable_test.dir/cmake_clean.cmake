file(REMOVE_RECURSE
  "CMakeFiles/metrics_predictable_test.dir/metrics_predictable_test.cc.o"
  "CMakeFiles/metrics_predictable_test.dir/metrics_predictable_test.cc.o.d"
  "metrics_predictable_test"
  "metrics_predictable_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_predictable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
