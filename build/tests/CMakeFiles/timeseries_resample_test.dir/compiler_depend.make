# Empty compiler generated dependencies file for timeseries_resample_test.
# This may be replaced when dependencies are built.
