file(REMOVE_RECURSE
  "CMakeFiles/timeseries_resample_test.dir/timeseries_resample_test.cc.o"
  "CMakeFiles/timeseries_resample_test.dir/timeseries_resample_test.cc.o.d"
  "timeseries_resample_test"
  "timeseries_resample_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeseries_resample_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
