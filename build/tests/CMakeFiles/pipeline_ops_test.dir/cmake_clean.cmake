file(REMOVE_RECURSE
  "CMakeFiles/pipeline_ops_test.dir/pipeline_ops_test.cc.o"
  "CMakeFiles/pipeline_ops_test.dir/pipeline_ops_test.cc.o.d"
  "pipeline_ops_test"
  "pipeline_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
