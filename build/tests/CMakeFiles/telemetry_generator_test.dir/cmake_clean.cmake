file(REMOVE_RECURSE
  "CMakeFiles/telemetry_generator_test.dir/telemetry_generator_test.cc.o"
  "CMakeFiles/telemetry_generator_test.dir/telemetry_generator_test.cc.o.d"
  "telemetry_generator_test"
  "telemetry_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
