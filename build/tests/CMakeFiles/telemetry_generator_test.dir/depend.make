# Empty dependencies file for telemetry_generator_test.
# This may be replaced when dependencies are built.
