file(REMOVE_RECURSE
  "CMakeFiles/azure_trace_test.dir/azure_trace_test.cc.o"
  "CMakeFiles/azure_trace_test.dir/azure_trace_test.cc.o.d"
  "azure_trace_test"
  "azure_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/azure_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
