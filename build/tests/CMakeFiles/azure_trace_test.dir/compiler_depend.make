# Empty compiler generated dependencies file for azure_trace_test.
# This may be replaced when dependencies are built.
