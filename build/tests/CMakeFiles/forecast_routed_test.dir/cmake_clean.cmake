file(REMOVE_RECURSE
  "CMakeFiles/forecast_routed_test.dir/forecast_routed_test.cc.o"
  "CMakeFiles/forecast_routed_test.dir/forecast_routed_test.cc.o.d"
  "forecast_routed_test"
  "forecast_routed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecast_routed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
