file(REMOVE_RECURSE
  "CMakeFiles/metrics_classify_test.dir/metrics_classify_test.cc.o"
  "CMakeFiles/metrics_classify_test.dir/metrics_classify_test.cc.o.d"
  "metrics_classify_test"
  "metrics_classify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_classify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
