# Empty dependencies file for metrics_classify_test.
# This may be replaced when dependencies are built.
