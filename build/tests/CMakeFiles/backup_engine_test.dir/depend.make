# Empty dependencies file for backup_engine_test.
# This may be replaced when dependencies are built.
