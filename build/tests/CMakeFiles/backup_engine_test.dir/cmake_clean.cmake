file(REMOVE_RECURSE
  "CMakeFiles/backup_engine_test.dir/backup_engine_test.cc.o"
  "CMakeFiles/backup_engine_test.dir/backup_engine_test.cc.o.d"
  "backup_engine_test"
  "backup_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
