file(REMOVE_RECURSE
  "CMakeFiles/forecast_additive_test.dir/forecast_additive_test.cc.o"
  "CMakeFiles/forecast_additive_test.dir/forecast_additive_test.cc.o.d"
  "forecast_additive_test"
  "forecast_additive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecast_additive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
