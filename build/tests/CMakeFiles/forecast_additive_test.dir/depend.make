# Empty dependencies file for forecast_additive_test.
# This may be replaced when dependencies are built.
