file(REMOVE_RECURSE
  "CMakeFiles/store_doc_test.dir/store_doc_test.cc.o"
  "CMakeFiles/store_doc_test.dir/store_doc_test.cc.o.d"
  "store_doc_test"
  "store_doc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_doc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
