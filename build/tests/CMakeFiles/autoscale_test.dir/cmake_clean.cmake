file(REMOVE_RECURSE
  "CMakeFiles/autoscale_test.dir/autoscale_test.cc.o"
  "CMakeFiles/autoscale_test.dir/autoscale_test.cc.o.d"
  "autoscale_test"
  "autoscale_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscale_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
