# Empty dependencies file for autoscale_test.
# This may be replaced when dependencies are built.
