file(REMOVE_RECURSE
  "CMakeFiles/pipeline_serving_test.dir/pipeline_serving_test.cc.o"
  "CMakeFiles/pipeline_serving_test.dir/pipeline_serving_test.cc.o.d"
  "pipeline_serving_test"
  "pipeline_serving_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_serving_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
