file(REMOVE_RECURSE
  "CMakeFiles/metrics_llwindow_test.dir/metrics_llwindow_test.cc.o"
  "CMakeFiles/metrics_llwindow_test.dir/metrics_llwindow_test.cc.o.d"
  "metrics_llwindow_test"
  "metrics_llwindow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_llwindow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
