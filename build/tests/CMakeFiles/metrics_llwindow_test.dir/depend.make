# Empty dependencies file for metrics_llwindow_test.
# This may be replaced when dependencies are built.
