file(REMOVE_RECURSE
  "CMakeFiles/telemetry_profile_test.dir/telemetry_profile_test.cc.o"
  "CMakeFiles/telemetry_profile_test.dir/telemetry_profile_test.cc.o.d"
  "telemetry_profile_test"
  "telemetry_profile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
