# Empty compiler generated dependencies file for telemetry_profile_test.
# This may be replaced when dependencies are built.
