file(REMOVE_RECURSE
  "CMakeFiles/forecast_neural_test.dir/forecast_neural_test.cc.o"
  "CMakeFiles/forecast_neural_test.dir/forecast_neural_test.cc.o.d"
  "forecast_neural_test"
  "forecast_neural_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecast_neural_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
