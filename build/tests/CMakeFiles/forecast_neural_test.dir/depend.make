# Empty dependencies file for forecast_neural_test.
# This may be replaced when dependencies are built.
