file(REMOVE_RECURSE
  "CMakeFiles/timeseries_series_test.dir/timeseries_series_test.cc.o"
  "CMakeFiles/timeseries_series_test.dir/timeseries_series_test.cc.o.d"
  "timeseries_series_test"
  "timeseries_series_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeseries_series_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
