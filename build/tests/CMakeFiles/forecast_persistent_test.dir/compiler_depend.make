# Empty compiler generated dependencies file for forecast_persistent_test.
# This may be replaced when dependencies are built.
