file(REMOVE_RECURSE
  "CMakeFiles/forecast_persistent_test.dir/forecast_persistent_test.cc.o"
  "CMakeFiles/forecast_persistent_test.dir/forecast_persistent_test.cc.o.d"
  "forecast_persistent_test"
  "forecast_persistent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecast_persistent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
