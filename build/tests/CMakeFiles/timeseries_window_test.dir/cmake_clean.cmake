file(REMOVE_RECURSE
  "CMakeFiles/timeseries_window_test.dir/timeseries_window_test.cc.o"
  "CMakeFiles/timeseries_window_test.dir/timeseries_window_test.cc.o.d"
  "timeseries_window_test"
  "timeseries_window_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeseries_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
