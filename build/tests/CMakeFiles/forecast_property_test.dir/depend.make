# Empty dependencies file for forecast_property_test.
# This may be replaced when dependencies are built.
