# Empty dependencies file for timeseries_stats_test.
# This may be replaced when dependencies are built.
