file(REMOVE_RECURSE
  "CMakeFiles/timeseries_stats_test.dir/timeseries_stats_test.cc.o"
  "CMakeFiles/timeseries_stats_test.dir/timeseries_stats_test.cc.o.d"
  "timeseries_stats_test"
  "timeseries_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeseries_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
