# Empty dependencies file for telemetry_records_test.
# This may be replaced when dependencies are built.
