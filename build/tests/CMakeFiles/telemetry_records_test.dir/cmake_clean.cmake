file(REMOVE_RECURSE
  "CMakeFiles/telemetry_records_test.dir/telemetry_records_test.cc.o"
  "CMakeFiles/telemetry_records_test.dir/telemetry_records_test.cc.o.d"
  "telemetry_records_test"
  "telemetry_records_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_records_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
