# Empty dependencies file for pipeline_modules_test.
# This may be replaced when dependencies are built.
