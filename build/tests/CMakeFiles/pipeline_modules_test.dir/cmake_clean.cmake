file(REMOVE_RECURSE
  "CMakeFiles/pipeline_modules_test.dir/pipeline_modules_test.cc.o"
  "CMakeFiles/pipeline_modules_test.dir/pipeline_modules_test.cc.o.d"
  "pipeline_modules_test"
  "pipeline_modules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_modules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
