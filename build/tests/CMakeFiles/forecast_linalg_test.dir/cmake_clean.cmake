file(REMOVE_RECURSE
  "CMakeFiles/forecast_linalg_test.dir/forecast_linalg_test.cc.o"
  "CMakeFiles/forecast_linalg_test.dir/forecast_linalg_test.cc.o.d"
  "forecast_linalg_test"
  "forecast_linalg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecast_linalg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
