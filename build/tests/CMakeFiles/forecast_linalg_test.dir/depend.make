# Empty dependencies file for forecast_linalg_test.
# This may be replaced when dependencies are built.
