file(REMOVE_RECURSE
  "CMakeFiles/forecast_model_test.dir/forecast_model_test.cc.o"
  "CMakeFiles/forecast_model_test.dir/forecast_model_test.cc.o.d"
  "forecast_model_test"
  "forecast_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecast_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
