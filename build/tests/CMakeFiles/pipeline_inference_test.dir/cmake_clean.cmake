file(REMOVE_RECURSE
  "CMakeFiles/pipeline_inference_test.dir/pipeline_inference_test.cc.o"
  "CMakeFiles/pipeline_inference_test.dir/pipeline_inference_test.cc.o.d"
  "pipeline_inference_test"
  "pipeline_inference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
