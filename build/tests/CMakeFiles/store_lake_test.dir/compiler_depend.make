# Empty compiler generated dependencies file for store_lake_test.
# This may be replaced when dependencies are built.
