file(REMOVE_RECURSE
  "CMakeFiles/store_lake_test.dir/store_lake_test.cc.o"
  "CMakeFiles/store_lake_test.dir/store_lake_test.cc.o.d"
  "store_lake_test"
  "store_lake_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_lake_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
