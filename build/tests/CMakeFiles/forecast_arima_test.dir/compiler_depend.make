# Empty compiler generated dependencies file for forecast_arima_test.
# This may be replaced when dependencies are built.
