file(REMOVE_RECURSE
  "CMakeFiles/forecast_arima_test.dir/forecast_arima_test.cc.o"
  "CMakeFiles/forecast_arima_test.dir/forecast_arima_test.cc.o.d"
  "forecast_arima_test"
  "forecast_arima_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecast_arima_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
