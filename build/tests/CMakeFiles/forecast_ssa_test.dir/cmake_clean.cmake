file(REMOVE_RECURSE
  "CMakeFiles/forecast_ssa_test.dir/forecast_ssa_test.cc.o"
  "CMakeFiles/forecast_ssa_test.dir/forecast_ssa_test.cc.o.d"
  "forecast_ssa_test"
  "forecast_ssa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecast_ssa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
