file(REMOVE_RECURSE
  "CMakeFiles/metrics_bucket_test.dir/metrics_bucket_test.cc.o"
  "CMakeFiles/metrics_bucket_test.dir/metrics_bucket_test.cc.o.d"
  "metrics_bucket_test"
  "metrics_bucket_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_bucket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
