# Empty dependencies file for seagull_cli.
# This may be replaced when dependencies are built.
