file(REMOVE_RECURSE
  "CMakeFiles/seagull_cli.dir/seagull_cli.cc.o"
  "CMakeFiles/seagull_cli.dir/seagull_cli.cc.o.d"
  "seagull"
  "seagull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seagull_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
