file(REMOVE_RECURSE
  "CMakeFiles/fig03_classification.dir/fig03_classification.cc.o"
  "CMakeFiles/fig03_classification.dir/fig03_classification.cc.o.d"
  "fig03_classification"
  "fig03_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
