# Empty dependencies file for fig03_classification.
# This may be replaced when dependencies are built.
