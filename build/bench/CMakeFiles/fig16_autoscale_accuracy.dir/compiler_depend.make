# Empty compiler generated dependencies file for fig16_autoscale_accuracy.
# This may be replaced when dependencies are built.
