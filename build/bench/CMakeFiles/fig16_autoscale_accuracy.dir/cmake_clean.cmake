file(REMOVE_RECURSE
  "CMakeFiles/fig16_autoscale_accuracy.dir/fig16_autoscale_accuracy.cc.o"
  "CMakeFiles/fig16_autoscale_accuracy.dir/fig16_autoscale_accuracy.cc.o.d"
  "fig16_autoscale_accuracy"
  "fig16_autoscale_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_autoscale_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
