# Empty dependencies file for fig12a_components.
# This may be replaced when dependencies are built.
