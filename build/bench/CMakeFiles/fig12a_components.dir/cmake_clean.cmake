file(REMOVE_RECURSE
  "CMakeFiles/fig12a_components.dir/fig12a_components.cc.o"
  "CMakeFiles/fig12a_components.dir/fig12a_components.cc.o.d"
  "fig12a_components"
  "fig12a_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12a_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
