# Empty dependencies file for fig13b_capacity.
# This may be replaced when dependencies are built.
