file(REMOVE_RECURSE
  "CMakeFiles/fig13b_capacity.dir/fig13b_capacity.cc.o"
  "CMakeFiles/fig13b_capacity.dir/fig13b_capacity.cc.o.d"
  "fig13b_capacity"
  "fig13b_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13b_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
