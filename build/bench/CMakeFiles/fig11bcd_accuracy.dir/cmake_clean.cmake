file(REMOVE_RECURSE
  "CMakeFiles/fig11bcd_accuracy.dir/fig11bcd_accuracy.cc.o"
  "CMakeFiles/fig11bcd_accuracy.dir/fig11bcd_accuracy.cc.o.d"
  "fig11bcd_accuracy"
  "fig11bcd_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11bcd_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
