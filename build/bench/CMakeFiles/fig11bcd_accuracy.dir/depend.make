# Empty dependencies file for fig11bcd_accuracy.
# This may be replaced when dependencies are built.
