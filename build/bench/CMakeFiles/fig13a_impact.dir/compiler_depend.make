# Empty compiler generated dependencies file for fig13a_impact.
# This may be replaced when dependencies are built.
