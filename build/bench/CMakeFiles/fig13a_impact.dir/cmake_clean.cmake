file(REMOVE_RECURSE
  "CMakeFiles/fig13a_impact.dir/fig13a_impact.cc.o"
  "CMakeFiles/fig13a_impact.dir/fig13a_impact.cc.o.d"
  "fig13a_impact"
  "fig13a_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13a_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
