# Empty dependencies file for fig17_autoscale_runtime.
# This may be replaced when dependencies are built.
