
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig17_autoscale_runtime.cc" "bench/CMakeFiles/fig17_autoscale_runtime.dir/fig17_autoscale_runtime.cc.o" "gcc" "bench/CMakeFiles/fig17_autoscale_runtime.dir/fig17_autoscale_runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scheduling/CMakeFiles/seagull_scheduling.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/seagull_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/seagull_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/seagull_store.dir/DependInfo.cmake"
  "/root/repo/build/src/autoscale/CMakeFiles/seagull_autoscale.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/seagull_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/forecast/CMakeFiles/seagull_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/seagull_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/seagull_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seagull_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
