file(REMOVE_RECURSE
  "CMakeFiles/fig17_autoscale_runtime.dir/fig17_autoscale_runtime.cc.o"
  "CMakeFiles/fig17_autoscale_runtime.dir/fig17_autoscale_runtime.cc.o.d"
  "fig17_autoscale_runtime"
  "fig17_autoscale_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_autoscale_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
