# Empty dependencies file for fig11a_train_infer.
# This may be replaced when dependencies are built.
