file(REMOVE_RECURSE
  "CMakeFiles/fig11a_train_infer.dir/fig11a_train_infer.cc.o"
  "CMakeFiles/fig11a_train_infer.dir/fig11a_train_infer.cc.o.d"
  "fig11a_train_infer"
  "fig11a_train_infer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_train_infer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
