file(REMOVE_RECURSE
  "CMakeFiles/sec532_persistent.dir/sec532_persistent.cc.o"
  "CMakeFiles/sec532_persistent.dir/sec532_persistent.cc.o.d"
  "sec532_persistent"
  "sec532_persistent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec532_persistent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
