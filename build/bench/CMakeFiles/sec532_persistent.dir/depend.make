# Empty dependencies file for sec532_persistent.
# This may be replaced when dependencies are built.
