file(REMOVE_RECURSE
  "CMakeFiles/fig12b_parallel.dir/fig12b_parallel.cc.o"
  "CMakeFiles/fig12b_parallel.dir/fig12b_parallel.cc.o.d"
  "fig12b_parallel"
  "fig12b_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12b_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
