# Empty compiler generated dependencies file for fig12b_parallel.
# This may be replaced when dependencies are built.
