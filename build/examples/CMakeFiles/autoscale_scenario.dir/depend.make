# Empty dependencies file for autoscale_scenario.
# This may be replaced when dependencies are built.
