file(REMOVE_RECURSE
  "CMakeFiles/autoscale_scenario.dir/autoscale_scenario.cpp.o"
  "CMakeFiles/autoscale_scenario.dir/autoscale_scenario.cpp.o.d"
  "autoscale_scenario"
  "autoscale_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscale_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
