file(REMOVE_RECURSE
  "CMakeFiles/backup_scheduling.dir/backup_scheduling.cpp.o"
  "CMakeFiles/backup_scheduling.dir/backup_scheduling.cpp.o.d"
  "backup_scheduling"
  "backup_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
