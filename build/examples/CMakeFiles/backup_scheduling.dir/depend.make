# Empty dependencies file for backup_scheduling.
# This may be replaced when dependencies are built.
