file(REMOVE_RECURSE
  "CMakeFiles/metrics_tour.dir/metrics_tour.cpp.o"
  "CMakeFiles/metrics_tour.dir/metrics_tour.cpp.o.d"
  "metrics_tour"
  "metrics_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
