file(REMOVE_RECURSE
  "CMakeFiles/real_trace.dir/real_trace.cpp.o"
  "CMakeFiles/real_trace.dir/real_trace.cpp.o.d"
  "real_trace"
  "real_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
