# Empty dependencies file for real_trace.
# This may be replaced when dependencies are built.
