#!/bin/sh
# tools/check.sh — the repository's one-command verification gate.
#
# Builds and tests two configurations:
#   1. Release        — what the benchmarks and CLI ship as.
#   2. tsan+ubsan     — -fsanitize=thread,undefined, which is what makes
#                       the parallel test layer (parallel_stress_test,
#                       fleet_determinism_test) an actual data-race gate
#                       rather than a convention.
#
# Usage:
#   tools/check.sh            # both configurations
#   tools/check.sh release    # Release only
#   tools/check.sh sanitize   # sanitizer build, full suite
#   tools/check.sh chaos      # fault-injection tests (ctest -L chaos)
#                             # under tsan+ubsan: races in the retry /
#                             # quarantine paths only show up while
#                             # faults are actually firing
#   tools/check.sh obs        # observability slice: unit + perf labels
#                             # in Release — the metrics/tracing suites
#                             # plus the op-count budget gate
#                             # (tests/budgets.json)
#   tools/check.sh perf       # data-plane throughput: the perf-label
#                             # tests plus bench/micro_substrate, which
#                             # writes BENCH_ingest.json (CSV vs
#                             # SeriesBlock ingestion rates and the
#                             # lake-cache hit trajectory), and
#                             # bench/micro_forecast, which writes
#                             # BENCH_forecast.json (scalar-vs-fast
#                             # kernel timings, per-model Fit p50/p99)
#                             # and fails if a model exceeds the
#                             # forecast_train_micros ceilings in
#                             # tests/budgets.json
#   tools/check.sh serving    # serving engine slice: the serving unit /
#                             # determinism suites in Release, then
#                             # bench/loadgen at the full 1200-server
#                             # fleet (writes BENCH_serving.json, fails
#                             # on the serving_micros per-verb ceilings
#                             # or the serving_min_throughput_rps floor
#                             # in tests/budgets.json), then a smaller
#                             # soak profile plus the determinism tests
#                             # under tsan+ubsan — query/ingest/tick
#                             # races only show up while all three run
#                             # concurrently (latency budgets are NOT
#                             # gated under tsan; only races are)
#   tools/check.sh scale      # fleet-scale memory plane: Release build,
#                             # then bench/fig12b_parallel --servers=100000
#                             # (shard-by-shard streaming-writer staging,
#                             # the {jobs=1, jobs=8} x {mmap, heap} pass
#                             # grid digest-compared for byte-identity,
#                             # gated on the fleet_scale peak-RSS /
#                             # per-server / encoder-residency budgets
#                             # in tests/budgets.json, writes
#                             # BENCH_scale.json; set SEAGULL_SCALE_1M=1
#                             # to also run the --servers=1000000 row —
#                             # ~95 GB of telemetry staged and retired
#                             # shard-wise, allow a couple of hours),
#                             # then micro_substrate with the
#                             # ingest_memory footprint gate, then the
#                             # streaming decode/encode + mmap-cache
#                             # suites under asan+ubsan (a separate
#                             # build dir — asan and tsan cannot
#                             # compose)
#   tools/check.sh serving-soak
#                             # ~60-second chaos soak under tsan+ubsan:
#                             # bench/loadgen on the spike profile with
#                             # 10% serving.refit faults and the full
#                             # verb mix (single + batch predicts,
#                             # subscription churn, ingest) — the
#                             # longest-running race probe of the
#                             # query/ingest/tick/notify paths. A fast
#                             # Release slice of the same run ships as
#                             # the `serving_soak` ctest entry under the
#                             # `serving` label.
#
# Exits non-zero on the first build or test failure.
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
MODE="${1:-all}"
JOBS="$(nproc 2>/dev/null || echo 2)"

# run_config <name> <build_dir> <ctest label or ''> [cmake args...]
run_config() {
  name="$1"
  build_dir="$2"
  label="$3"
  shift 3
  echo "=== [$name] configure ==="
  cmake -B "$build_dir" -S "$ROOT" "$@"
  echo "=== [$name] build ==="
  cmake --build "$build_dir" -j "$JOBS"
  echo "=== [$name] ctest ==="
  if [ -n "$label" ]; then
    (cd "$build_dir" && ctest --output-on-failure -j "$JOBS" -L "$label")
  else
    (cd "$build_dir" && ctest --output-on-failure -j "$JOBS")
  fi
  echo "=== [$name] OK ==="
}

sanitize_config() {
  label="$1"
  # tools/tsan.supp masks the known tsan x ubsan pipe-probe interop
  # report (see the file); everything else still fails the gate.
  TSAN_OPTIONS="suppressions=$ROOT/tools/tsan.supp ${TSAN_OPTIONS:-}"
  export TSAN_OPTIONS
  run_config tsan+ubsan "$ROOT/build-sanitize" "$label" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread,undefined"
}

case "$MODE" in
  release|all)
    run_config release "$ROOT/build-release" "" \
      -DCMAKE_BUILD_TYPE=Release
    ;;
  obs)
    run_config release "$ROOT/build-release" 'unit|perf' \
      -DCMAKE_BUILD_TYPE=Release
    ;;
  perf)
    run_config release "$ROOT/build-release" 'perf' \
      -DCMAKE_BUILD_TYPE=Release
    echo "=== [perf] bench/micro_substrate (writes BENCH_ingest.json) ==="
    (cd "$ROOT/build-release" &&
      ./bench/micro_substrate --benchmark_filter='Ingest|CacheHit')
    echo "=== [perf] bench/micro_forecast (writes BENCH_forecast.json," \
         "gates on tests/budgets.json forecast_train_micros) ==="
    (cd "$ROOT/build-release" &&
      ./bench/micro_forecast --budgets="$ROOT/tests/budgets.json")
    echo "=== [perf] OK ==="
    ;;
  serving)
    run_config release "$ROOT/build-release" 'serving' \
      -DCMAKE_BUILD_TYPE=Release
    echo "=== [serving] bench/loadgen (writes BENCH_serving.json," \
         "gates on tests/budgets.json serving_micros) ==="
    (cd "$ROOT/build-release" &&
      ./bench/loadgen --servers=1200 --budgets="$ROOT/tests/budgets.json")
    echo "=== [serving] tsan soak ==="
    TSAN_OPTIONS="suppressions=$ROOT/tools/tsan.supp ${TSAN_OPTIONS:-}"
    export TSAN_OPTIONS
    cmake -B "$ROOT/build-sanitize" -S "$ROOT" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=thread,undefined -fno-sanitize-recover=all" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread,undefined"
    cmake --build "$ROOT/build-sanitize" -j "$JOBS" \
      --target serving_determinism_test loadgen
    (cd "$ROOT/build-sanitize" &&
      ctest --output-on-failure -R serving_determinism_test)
    (cd "$ROOT/build-sanitize" &&
      ./bench/loadgen --servers=200 --ticks=6 --base=100 --jobs=4)
    echo "=== [serving] OK ==="
    ;;
  scale)
    run_config release "$ROOT/build-release" 'unit' \
      -DCMAKE_BUILD_TYPE=Release
    echo "=== [scale] bench/fig12b_parallel --servers=100000 (writes" \
         "BENCH_scale.json, gates on tests/budgets.json fleet_scale," \
         "checks jobs and mmap-on/off digest byte-identity) ==="
    (cd "$ROOT/build-release" &&
      ./bench/fig12b_parallel --servers=100000 --jobs=8 \
        --budgets="$ROOT/tests/budgets.json")
    if [ "${SEAGULL_SCALE_1M:-0}" = "1" ]; then
      echo "=== [scale] opt-in 1M-server row (SEAGULL_SCALE_1M=1):" \
           "~95 GB staged and retired shard-wise, budget-gated ==="
      (cd "$ROOT/build-release" &&
        ./bench/fig12b_parallel --servers=1000000 --jobs=8 \
          --budgets="$ROOT/tests/budgets.json")
    fi
    echo "=== [scale] bench/micro_substrate (ingest_memory footprint gate) ==="
    (cd "$ROOT/build-release" &&
      ./bench/micro_substrate --benchmark_filter='IngestStreaming' \
        --budgets="$ROOT/tests/budgets.json")
    echo "=== [scale] streaming decode/encode + mmap suites under asan+ubsan ==="
    # A dedicated build dir: asan is incompatible with the tsan config
    # that build-sanitize holds.
    cmake -B "$ROOT/build-asan" -S "$ROOT" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
    cmake --build "$ROOT/build-asan" -j "$JOBS" \
      --target telemetry_series_block_test series_block_writer_test \
      store_lake_cache_test telemetry_records_test \
      store_doc_test pipeline_modules_test
    (cd "$ROOT/build-asan" && ctest --output-on-failure -R \
      'telemetry_series_block_test|series_block_writer_test|store_lake_cache_test|telemetry_records_test|store_doc_test|pipeline_modules_test')
    echo "=== [scale] OK ==="
    ;;
  serving-soak)
    TSAN_OPTIONS="suppressions=$ROOT/tools/tsan.supp ${TSAN_OPTIONS:-}"
    export TSAN_OPTIONS
    cmake -B "$ROOT/build-sanitize" -S "$ROOT" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=thread,undefined -fno-sanitize-recover=all" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread,undefined"
    cmake --build "$ROOT/build-sanitize" -j "$JOBS" --target loadgen
    echo "=== [serving-soak] ~60s tsan chaos soak (spike, 10% refit faults) ==="
    (cd "$ROOT/build-sanitize" &&
      ./bench/loadgen --servers=400 --ticks=24 --base=200 --jobs=4 \
        --profile=spike --fault-rate=0.1)
    echo "=== [serving-soak] OK ==="
    ;;
esac

case "$MODE" in
  sanitize|all)
    sanitize_config ""
    ;;
  chaos)
    sanitize_config chaos
    ;;
esac

case "$MODE" in
  release|sanitize|chaos|obs|perf|serving|serving-soak|scale|all) ;;
  *)
    echo "usage: tools/check.sh" \
         "[release|sanitize|chaos|obs|perf|serving|serving-soak|scale|all]" >&2
    exit 2
    ;;
esac

echo "check.sh: all requested configurations passed"
