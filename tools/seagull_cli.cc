/// \file seagull_cli.cc
/// \brief `seagull` — operational command line for the Seagull stores.
///
/// Drives the same library code the simulation uses, but against
/// persistent state on disk (a lake directory and a document-store JSON
/// snapshot), the way an operator would:
///
///   seagull generate  --lake DIR --region NAME [--servers N] [--weeks W] [--seed S]
///   seagull pipeline  --lake DIR --docs FILE --region NAME[,NAME...] --week K
///                     [--model FAMILY] [--threads N] [--jobs N] [--all-days]
///                     [--retries N] [--fault-rate P --fault-seed S]
///                     [--trace-out FILE] [--metrics-out FILE]
///   seagull schedule  --lake DIR --docs FILE --region NAME[,NAME...] --day D
///                     [--jobs N]
///
/// `--fault-rate`/`--fault-seed` enable the deterministic fault
/// substrate (common/fault.h) on the store layer — the operational
/// rehearsal for transient Azure failures. Regions that exhaust
/// `--retries` are quarantined, not fatal.
///
/// `--trace-out` writes a Chrome trace_event JSON of the run's span
/// tree (load in chrome://tracing or ui.perfetto.dev); `--metrics-out`
/// writes the process metrics snapshot (see DESIGN.md "Observability").
///   seagull transcode --lake DIR --key KEY [--to csv|binary] [--out KEY]
///   seagull dashboard --docs FILE
///   seagull incidents --docs FILE --region NAME
///   seagull advise    --lake DIR --docs FILE --region NAME --server ID
///                     --day D --start HH:MM [--duration MIN]
///   seagull serve     --lake DIR --docs FILE --region NAME [--week K]
///                     | --synthetic [--servers N] [--seed S]
///                     [--horizon MIN] [--threads N]
///   seagull loadtest  (same bootstrap flags as serve)
///                     [--profile ramp|spike|soak] [--mode open|closed]
///                     [--ticks N] [--base N] [--clients N] [--jobs N]
///                     [--batch-frac F] [--batch-size N]
///                     [--subscribe-frac F] [--out FILE]
///
/// `serve` boots the streaming `ServingEngine` (src/serving) over the
/// region's telemetry tails and active model, then answers JSON-line
/// requests from stdin (predict — single or batched via a `servers`
/// array — / ll_window / subscribe_ll / unsubscribe / ingest); the
/// extra `{"verb":"tick"}` line advances the simulated 5-minute epoch
/// the way a production timer would, printing any subscription
/// notifications the swap fired. `loadtest` drives the same engine with the
/// deterministic open/closed-loop generators from bench/loadgen.
/// `--synthetic` serves a generated fleet with the persistent-prev-day
/// champion instead of lake + docs state — no prior pipeline run needed.
///
/// `generate` plays the role of Azure telemetry + Load Extraction
/// (`--format binary` writes columnar SeriesBlock blobs instead of CSV);
/// `transcode` converts a stored telemetry blob between the two formats
/// in place (or to `--out`). `--lake-cache-mb` on pipeline/schedule
/// enables the shared-buffer lake blob cache; `--lake-mmap` (default
/// on) serves blob reads as page-cache-backed mappings instead of heap
/// copies. Everything else is the production path.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>

#include "common/fault.h"
#include "forecast/persistent.h"
#include "serving/loadgen.h"
#include "common/obs/metrics.h"
#include "common/obs/trace.h"
#include "common/strings.h"
#include "pipeline/dashboard.h"
#include "pipeline/fleet_runner.h"
#include "pipeline/incidents.h"
#include "pipeline/scheduler.h"
#include "scheduling/backup_scheduler.h"
#include "scheduling/window_advisor.h"
#include "store/resilient_store.h"
#include "telemetry/emitter.h"
#include "telemetry/series_block.h"
#include "telemetry/series_block_writer.h"

using namespace seagull;

namespace {

/// Minimal --flag value parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) continue;
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "1";  // boolean flag
      }
    }
  }

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return ParseInt64(it->second).ValueOr(fallback);
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return ParseDouble(it->second).ValueOr(fallback);
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  /// Fails fast when a required flag is absent.
  Result<std::string> Require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      return Status::Invalid("missing required flag --" + key);
    }
    return it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<DocStore*> OpenDocs(const std::string& path) {
  static DocStore docs;  // one store per process invocation
  if (!path.empty()) {
    Status st = docs.LoadFromFile(path);
    if (!st.ok() && !st.IsNotFound()) return st;
  }
  return &docs;
}

/// Reads the latest telemetry for one region from the lake and groups it
/// per server (the online components' view of "recent load"). Goes
/// through `ResilientStore` so transient blob faults are retried the way
/// the production reader would.
Result<std::vector<ServerTelemetry>> LoadTelemetry(const ResilientStore& store,
                                                   const std::string& region,
                                                   int64_t up_to_week) {
  for (int64_t w = up_to_week; w >= 0; --w) {
    std::string key = LakeStore::TelemetryKey(region, w);
    auto blob = store.LakeGetBlob(key);
    if (blob.status().IsNotFound()) continue;
    if (!blob.ok()) return blob.status();
    // Telemetry may be stored as CSV or as a binary SeriesBlock;
    // DecodeTelemetryBlob sniffs the magic and dispatches. The decode
    // consumes the view before the ref (and any mapping) is released.
    return DecodeTelemetryBlob(blob->view());
  }
  return Status::NotFound("no telemetry for region " + region);
}

/// Parses `--retries` / `--fault-rate` / `--fault-seed`: returns the
/// retry policy and, when a fault rate is given, enables the global
/// fault registry for this invocation.
RetryPolicy ConfigureResilience(const Args& args) {
  RetryPolicy retry;
  retry.max_attempts =
      static_cast<int>(args.GetInt("retries", retry.max_attempts));
  retry.jitter_seed = static_cast<uint64_t>(args.GetInt("fault-seed", 0));
  const double fault_rate = args.GetDouble("fault-rate", 0.0);
  if (fault_rate > 0.0) {
    FaultConfig faults;
    faults.seed = static_cast<uint64_t>(args.GetInt("fault-seed", 0));
    faults.rate = fault_rate;
    FaultRegistry::Global().Configure(faults);
    std::fprintf(stderr,
                 "fault injection enabled: rate %.4f seed %llu\n",
                 fault_rate,
                 static_cast<unsigned long long>(faults.seed));
  }
  return retry;
}

/// Writes one observability artifact through the lake layer: the output
/// path's directory becomes a `LakeStore` root and the basename the
/// object key, so traces and metrics snapshots travel the same store
/// abstraction as telemetry (and inherit its atomic tmp+rename write).
Status WriteObsArtifact(const std::string& path, const std::string& body) {
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const std::string key =
      slash == std::string::npos ? path : path.substr(slash + 1);
  if (key.empty()) return Status::Invalid("output path is a directory: " + path);
  SEAGULL_ASSIGN_OR_RETURN(LakeStore out,
                           LakeStore::Open(dir.empty() ? "/" : dir));
  return out.Put(key, body);
}

int CmdGenerate(const Args& args) {
  auto lake_dir = args.Require("lake");
  auto region_name = args.Require("region");
  if (!lake_dir.ok()) return Fail(lake_dir.status());
  if (!region_name.ok()) return Fail(region_name.status());

  RegionConfig config;
  config.name = *region_name;
  config.num_servers = static_cast<int>(args.GetInt("servers", 200));
  config.weeks = static_cast<int>(args.GetInt("weeks", 5));
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  const std::string format = args.Get("format", "csv");
  if (format != "csv" && format != "binary") {
    return Fail(Status::Invalid("--format must be csv or binary"));
  }

  auto lake = LakeStore::Open(*lake_dir);
  if (!lake.ok()) return Fail(lake.status());
  Fleet fleet = Fleet::Generate(config);
  for (int64_t w = 0; w < config.weeks; ++w) {
    std::string key = LakeStore::TelemetryKey(config.name, w);
    Status st;
    if (format == "binary") {
      // Streaming extraction: SGB1 bytes go from the writer straight
      // into the atomic put, so even a huge region never materializes
      // its rows or its blob (byte-identical to ExtractWeekBlock).
      st = lake->PutStreamed(key, [&](std::ostream& out) {
        return ExtractWeekBlockTo(
            fleet, w, [&](std::string_view bytes) -> Status {
              out.write(bytes.data(),
                        static_cast<std::streamsize>(bytes.size()));
              if (!out) return Status::IOError("short write: " + key);
              return Status::OK();
            });
      });
    } else {
      st = lake->Put(key, ExtractWeekCsvText(fleet, w));
    }
    if (!st.ok()) return Fail(st);
    auto size = lake->SizeOf(key);
    std::printf("wrote %s (%.1f MB)\n", key.c_str(),
                static_cast<double>(size.ValueOr(0)) / (1024.0 * 1024.0));
  }
  std::printf("generated %d servers x %d weeks for region %s\n",
              config.num_servers, config.weeks, config.name.c_str());
  return 0;
}

int CmdPipeline(const Args& args) {
  auto lake_dir = args.Require("lake");
  auto docs_path = args.Require("docs");
  auto region = args.Require("region");
  if (!lake_dir.ok()) return Fail(lake_dir.status());
  if (!docs_path.ok()) return Fail(docs_path.status());
  if (!region.ok()) return Fail(region.status());
  int64_t week = args.GetInt("week", -1);
  if (week < 0) return Fail(Status::Invalid("missing required flag --week"));

  auto lake = LakeStore::Open(*lake_dir);
  if (!lake.ok()) return Fail(lake.status());
  const int64_t cache_mb = args.GetInt("lake-cache-mb", 0);
  if (cache_mb > 0) lake->ConfigureCache(cache_mb << 20);
  lake->ConfigureMmap(args.GetInt("lake-mmap", 1) != 0);
  auto docs = OpenDocs(*docs_path);
  if (!docs.ok()) return Fail(docs.status());
  // After the snapshot load: the rehearsal faults the pipeline's store
  // traffic, not the CLI's own bootstrap.
  RetryPolicy retry = ConfigureResilience(args);

  // --trace-out enables span collection for this invocation only; the
  // sink stays disabled (one relaxed load per span site) otherwise.
  const std::string trace_out = args.Get("trace-out");
  const std::string metrics_out = args.Get("metrics-out");
  if (!trace_out.empty()) {
    TraceSink::Global().Clear();
    TraceSink::Global().Enable();
  }

  PipelineContext config;
  config.model_name = args.Get("model", "persistent_prev_day");
  std::unique_ptr<ThreadPool> pool;
  int64_t threads = args.GetInt("threads", 0);
  if (threads > 0) {
    pool = std::make_unique<ThreadPool>(static_cast<int>(threads));
    config.pool = pool.get();
  }

  // Fan regions across the fleet engine: --jobs N pipelines run
  // concurrently; jobs=1 is the sequential reference.
  std::vector<std::string> regions = SplitString(*region, ',');
  FleetOptions fleet_options;
  fleet_options.jobs = static_cast<int>(args.GetInt("jobs", 1));
  fleet_options.retry = retry;
  FleetRunner runner(&*lake, *docs, fleet_options);
  std::vector<FleetJob> fleet_jobs;
  for (const auto& r : regions) fleet_jobs.push_back({r, week});
  FleetRunResult fleet = runner.Run(fleet_jobs, config);

  bool all_ok = true;
  for (size_t i = 0; i < fleet.runs.size(); ++i) {
    const auto& run = fleet.runs[i];
    const std::string& r = regions[i];
    if (run.report.timings.empty()) {
      std::printf("region %s not due at week %lld (already ran)\n",
                  r.c_str(), static_cast<long long>(week));
      continue;
    }
    std::printf("pipeline %s week %lld: %s (%.1f ms)\n", r.c_str(),
                static_cast<long long>(week),
                run.report.success ? "ok" : "FAILED",
                run.report.TotalMillis());
    for (const auto& t : run.report.timings) {
      std::printf("  %-12s %10.1f ms %s\n", t.module.c_str(), t.millis,
                  t.ok ? "" : "FAILED");
    }
    for (const auto& alert : run.alerts) {
      std::printf("ALERT [%s] %s\n", alert.rule.c_str(),
                  alert.message.c_str());
    }
    all_ok = all_ok && run.report.success;
  }
  for (const auto& q : fleet.quarantined) {
    std::printf("QUARANTINED %s week %lld: %s\n", q.region.c_str(),
                static_cast<long long>(q.week), q.reason.c_str());
  }
  if (regions.size() > 1 || fleet.TotalRetries() > 0) {
    std::printf("fleet: %lld regions, %lld ok, %lld failed, %lld "
                "quarantined, %lld retries, %d jobs, %.1f ms wall\n",
                static_cast<long long>(fleet.runs.size()),
                static_cast<long long>(fleet.SuccessCount()),
                static_cast<long long>(fleet.FailureCount()),
                static_cast<long long>(fleet.quarantined.size()),
                static_cast<long long>(fleet.TotalRetries()), fleet.jobs,
                fleet.wall_millis);
  }
  // The post-run snapshot save must not be chaos-faulted, and neither
  // may the observability artifacts below.
  FaultRegistry::Global().Disable();
  Status st = (*docs)->SaveToFile(*docs_path);
  if (!st.ok()) return Fail(st);
  if (!trace_out.empty()) {
    TraceSink::Global().Disable();
    Status ts =
        WriteObsArtifact(trace_out,
                         TraceSink::Global().ToChromeTrace().DumpPretty());
    if (!ts.ok()) return Fail(ts);
    std::fprintf(stderr, "wrote %lld spans to %s (%lld dropped)\n",
                 static_cast<long long>(TraceSink::Global().EventCount()),
                 trace_out.c_str(),
                 static_cast<long long>(TraceSink::Global().dropped()));
  }
  if (!metrics_out.empty()) {
    Status ms = WriteObsArtifact(
        metrics_out,
        MetricsRegistry::Global().Snapshot().ToJson().DumpPretty());
    if (!ms.ok()) return Fail(ms);
    std::fprintf(stderr, "wrote metrics snapshot to %s\n",
                 metrics_out.c_str());
  }
  // A quarantined fleet still exits non-zero so operators notice, but
  // only after every healthy region's results are persisted.
  return all_ok ? 0 : 1;
}

int CmdSchedule(const Args& args) {
  auto lake_dir = args.Require("lake");
  auto docs_path = args.Require("docs");
  auto region = args.Require("region");
  if (!lake_dir.ok()) return Fail(lake_dir.status());
  if (!docs_path.ok()) return Fail(docs_path.status());
  if (!region.ok()) return Fail(region.status());
  int64_t day = args.GetInt("day", -1);
  if (day < 0) return Fail(Status::Invalid("missing required flag --day"));

  auto lake = LakeStore::Open(*lake_dir);
  if (!lake.ok()) return Fail(lake.status());
  const int64_t cache_mb = args.GetInt("lake-cache-mb", 0);
  if (cache_mb > 0) lake->ConfigureCache(cache_mb << 20);
  lake->ConfigureMmap(args.GetInt("lake-mmap", 1) != 0);
  auto docs = OpenDocs(*docs_path);
  if (!docs.ok()) return Fail(docs.status());
  ResilientStore store(&*lake, *docs, ConfigureResilience(args));

  // One region's daily pass, rendered to a string so multi-region runs
  // can print in region order regardless of completion order.
  auto schedule_region =
      [&](const std::string& r) -> Result<std::string> {
    SEAGULL_ASSIGN_OR_RETURN(auto telemetry,
                             LoadTelemetry(store, r, day / 7));

    // Servers due on `day`: default window falls on that weekday.
    std::vector<DueServer> due;
    for (const auto& st : telemetry) {
      if (DayOfWeekOf(st.default_backup_start) !=
          DayOfWeekOf(day * kMinutesPerDay)) {
        continue;
      }
      DueServer d;
      d.server_id = st.server_id;
      d.recent_load = st.load.Slice(st.load.start(), day * kMinutesPerDay);
      // Rebase the default window onto this day.
      d.default_start = day * kMinutesPerDay +
                        MinuteOfDay(st.default_backup_start);
      d.default_end = d.default_start + st.backup_duration_minutes();
      d.backup_duration_minutes = st.backup_duration_minutes();
      due.push_back(std::move(d));
    }

    ServiceFabricProperties properties;
    BackupScheduler backup_scheduler(*docs, &properties);
    auto schedules = backup_scheduler.ScheduleDay(r, day, due);
    std::string out;
    out += StringPrintf("%-24s %-24s %-8s %s\n", "server", "decision",
                        "window", "moved");
    for (const auto& s : schedules) {
      out += StringPrintf("%-24s %-24s %-8s %s\n", s.server_id.c_str(),
                          ScheduleDecisionName(s.decision),
                          FormatTimeOfDay(MinuteOfDay(s.window_start))
                              .c_str(),
                          s.moved() ? "yes" : "");
    }
    out += StringPrintf("%zu servers due, %lld moved to low-load "
                        "windows\n",
                        schedules.size(),
                        static_cast<long long>(std::count_if(
                            schedules.begin(), schedules.end(),
                            [](const ScheduledBackup& s) {
                              return s.moved();
                            })));
    return out;
  };

  std::vector<std::string> regions = SplitString(*region, ',');
  const int jobs = static_cast<int>(args.GetInt("jobs", 1));
  std::vector<Result<std::string>> rendered(
      regions.size(), Result<std::string>(std::string()));
  auto work = [&](int64_t i) {
    rendered[static_cast<size_t>(i)] =
        schedule_region(regions[static_cast<size_t>(i)]);
  };
  const int64_t n = static_cast<int64_t>(regions.size());
  if (jobs > 1 && n > 1) {
    ThreadPool pool(jobs);
    ParallelForChunked(&pool, n, /*grain=*/1,
                       [&](int64_t begin, int64_t end) {
                         for (int64_t i = begin; i < end; ++i) work(i);
                       });
  } else {
    SequentialFor(n, work);
  }
  for (size_t i = 0; i < regions.size(); ++i) {
    if (!rendered[i].ok()) return Fail(rendered[i].status());
    if (regions.size() > 1) {
      std::printf("--- region %s day %lld ---\n", regions[i].c_str(),
                  static_cast<long long>(day));
    }
    std::printf("%s", rendered[i]->c_str());
  }
  return 0;
}

int CmdDashboard(const Args& args) {
  auto docs_path = args.Require("docs");
  if (!docs_path.ok()) return Fail(docs_path.status());
  auto docs = OpenDocs(*docs_path);
  if (!docs.ok()) return Fail(docs.status());
  Dashboard dashboard(*docs);
  std::printf("%s", dashboard.Render().c_str());
  return 0;
}

int CmdIncidents(const Args& args) {
  auto docs_path = args.Require("docs");
  auto region = args.Require("region");
  if (!docs_path.ok()) return Fail(docs_path.status());
  if (!region.ok()) return Fail(region.status());
  auto docs = OpenDocs(*docs_path);
  if (!docs.ok()) return Fail(docs.status());
  IncidentManager manager(*docs);
  auto history = manager.History(*region);
  if (history.empty()) {
    std::printf("no incidents for region %s\n", region->c_str());
    return 0;
  }
  for (const auto& doc : history) {
    std::printf("[%s] week %lld %s: %s\n",
                doc.body.GetString("severity").ValueOr("?").c_str(),
                static_cast<long long>(
                    doc.body.GetNumber("week").ValueOr(-1)),
                doc.body.GetString("module").ValueOr("?").c_str(),
                doc.body.GetString("message").ValueOr("").c_str());
  }
  return 0;
}

int CmdAdvise(const Args& args) {
  auto lake_dir = args.Require("lake");
  auto docs_path = args.Require("docs");
  auto region = args.Require("region");
  auto server = args.Require("server");
  auto start_str = args.Require("start");
  if (!lake_dir.ok()) return Fail(lake_dir.status());
  if (!docs_path.ok()) return Fail(docs_path.status());
  if (!region.ok()) return Fail(region.status());
  if (!server.ok()) return Fail(server.status());
  if (!start_str.ok()) return Fail(start_str.status());
  int64_t day = args.GetInt("day", -1);
  if (day < 0) return Fail(Status::Invalid("missing required flag --day"));
  int64_t duration = args.GetInt("duration", 60);

  // Parse HH:MM.
  auto parts = SplitString(*start_str, ':');
  if (parts.size() != 2) {
    return Fail(Status::Invalid("--start must be HH:MM"));
  }
  auto hh = ParseInt64(parts[0]);
  auto mm = ParseInt64(parts[1]);
  if (!hh.ok() || !mm.ok()) return Fail(Status::Invalid("bad --start"));
  MinuteStamp customer_start = day * kMinutesPerDay + *hh * 60 + *mm;

  auto lake = LakeStore::Open(*lake_dir);
  if (!lake.ok()) return Fail(lake.status());
  auto docs = OpenDocs(*docs_path);
  if (!docs.ok()) return Fail(docs.status());
  auto endpoint = LoadActiveEndpoint(*docs, *region);
  if (!endpoint.ok()) return Fail(endpoint.status());

  ResilientStore store(&*lake, *docs);
  auto telemetry = LoadTelemetry(store, *region, day / 7);
  if (!telemetry.ok()) return Fail(telemetry.status());
  const ServerTelemetry* found = nullptr;
  for (const auto& st : *telemetry) {
    if (st.server_id == *server) found = &st;
  }
  if (found == nullptr) {
    return Fail(Status::NotFound("no telemetry for server " + *server));
  }
  LoadSeries recent =
      found->load.Slice(found->load.start(), day * kMinutesPerDay);
  auto advice = AdviseCustomerWindow(*endpoint, *server, recent,
                                     customer_start, duration);
  if (!advice.ok()) return Fail(advice.status());
  std::printf("customer window %s (+%lldmin): predicted load %.1f%%\n",
              start_str->c_str(), static_cast<long long>(duration),
              advice->customer_window_load);
  if (advice->customer_window_ok) {
    std::printf("verdict: fine — within tolerance of the predicted "
                "lowest-load window\n");
  } else {
    std::printf("verdict: suggest %s instead (predicted %.1f%%, saves "
                "%.1f points)\n",
                FormatTimeOfDay(MinuteOfDay(advice->suggested.start))
                    .c_str(),
                advice->suggested.average_load, advice->predicted_saving);
  }
  return 0;
}

int CmdTranscode(const Args& args) {
  auto lake_dir = args.Require("lake");
  auto key = args.Require("key");
  if (!lake_dir.ok()) return Fail(lake_dir.status());
  if (!key.ok()) return Fail(key.status());

  auto lake = LakeStore::Open(*lake_dir);
  if (!lake.ok()) return Fail(lake.status());
  auto blob = lake->Get(*key);
  if (!blob.ok()) return Fail(blob.status());

  const bool is_block = IsSeriesBlock(*blob);
  const std::string to = args.Get("to", is_block ? "csv" : "binary");
  if (to != "csv" && to != "binary") {
    return Fail(Status::Invalid("--to must be csv or binary"));
  }
  const std::string out_key = args.Get("out", *key);

  // Both directions run through TelemetryRecord rows, so a transcode
  // round trip reproduces the original bytes (values are stored
  // pre-quantized to the CSV's %.4f in either format).
  std::string converted;
  int64_t rows = 0;
  int64_t streamed_bytes = -1;  // >= 0 once the streamed path has written
  if (to == "binary") {
    if (is_block) {
      converted = *blob;  // already binary; re-put verbatim
      auto info = PeekSeriesBlock(converted);
      if (!info.ok()) return Fail(info.status());
      rows = info->total_samples;
    } else {
      auto records = ParseTelemetryCsv(*blob);
      if (!records.ok()) return Fail(records.status());
      rows = static_cast<int64_t>(records->size());
      // Stream the encode straight into the atomic put: the SGB1 bytes
      // go incrementally from the writer to the staged file, never
      // materializing the blob string.
      int64_t written = 0;
      Status put = lake->PutStreamed(out_key, [&](std::ostream& out) {
        return WriteSeriesBlockFromRecords(
            *records, kServerIntervalMinutes,
            [&](std::string_view bytes) -> Status {
              out.write(bytes.data(),
                        static_cast<std::streamsize>(bytes.size()));
              if (!out) return Status::IOError("short write: " + out_key);
              written += static_cast<int64_t>(bytes.size());
              return Status::OK();
            });
      });
      if (!put.ok()) return Fail(put);
      streamed_bytes = written;
    }
  } else {
    if (!is_block) {
      converted = *blob;
      auto records = ParseTelemetryCsv(converted);
      if (!records.ok()) return Fail(records.status());
      rows = static_cast<int64_t>(records->size());
    } else {
      auto records = DecodeSeriesBlock(*blob);
      if (!records.ok()) return Fail(records.status());
      rows = static_cast<int64_t>(records->size());
      converted = RecordsToCsvText(*records);
    }
  }
  if (streamed_bytes < 0) {
    Status st = lake->Put(out_key, converted);
    if (!st.ok()) return Fail(st);
    streamed_bytes = static_cast<int64_t>(converted.size());
  }
  std::printf("transcoded %s (%s, %zu bytes) -> %s (%s, %lld bytes), "
              "%lld rows\n",
              key->c_str(), is_block ? "binary" : "csv", blob->size(),
              out_key.c_str(), to.c_str(),
              static_cast<long long>(streamed_bytes),
              static_cast<long long>(rows));
  return 0;
}

/// Bootstrap inputs of the serving engine: the deployed endpoint plus
/// one telemetry tail per server.
struct ServingSetup {
  ModelEndpoint endpoint;
  std::vector<ServerTelemetry> tails;
};

/// `--synthetic` serving state: a generated one-week fleet with the
/// fleet-wide persistent-prev-day champion (heuristic family, so one
/// model serves every server) — lets serve/loadtest run without a lake
/// or a prior pipeline deployment.
Result<ServingSetup> SyntheticSetup(const Args& args) {
  RegionConfig config;
  config.name = args.Get("region", "serve");
  config.num_servers = static_cast<int>(args.GetInt("servers", 200));
  config.weeks = 1;
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  Fleet fleet = Fleet::Generate(config);

  ServingSetup setup;
  setup.tails.reserve(fleet.servers().size());
  for (const auto& profile : fleet.servers()) {
    ServerTelemetry st;
    st.server_id = profile.server_id;
    st.load = fleet.ObservedLoad(profile, 0, kMinutesPerWeek);
    setup.tails.push_back(std::move(st));
  }

  PersistentForecast model(PersistentVariant::kPreviousDay);
  Json body = Json::MakeObject();
  body["family"] = "persistent_prev_day";
  body["version"] = 1;
  Json models = Json::MakeObject();
  SEAGULL_ASSIGN_OR_RETURN(Json serialized, model.Serialize());
  models[""] = std::move(serialized);
  body["models"] = std::move(models);
  SEAGULL_ASSIGN_OR_RETURN(setup.endpoint,
                           ModelEndpoint::FromVersionDoc(body));
  return setup;
}

/// Production serving state: the region's active model version from the
/// doc store plus its latest telemetry week from the lake.
Result<ServingSetup> LakeSetup(const Args& args) {
  SEAGULL_ASSIGN_OR_RETURN(std::string lake_dir, args.Require("lake"));
  SEAGULL_ASSIGN_OR_RETURN(std::string docs_path, args.Require("docs"));
  SEAGULL_ASSIGN_OR_RETURN(std::string region, args.Require("region"));
  SEAGULL_ASSIGN_OR_RETURN(LakeStore lake, LakeStore::Open(lake_dir));
  SEAGULL_ASSIGN_OR_RETURN(DocStore * docs, OpenDocs(docs_path));

  ServingSetup setup;
  SEAGULL_ASSIGN_OR_RETURN(setup.endpoint,
                           LoadActiveEndpoint(docs, region));
  ResilientStore store(&lake, docs, ConfigureResilience(args));
  SEAGULL_ASSIGN_OR_RETURN(
      setup.tails,
      LoadTelemetry(store, region, args.GetInt("week", 12)));
  return setup;
}

Result<ServingSetup> BuildServingSetup(const Args& args) {
  return args.Has("synthetic") ? SyntheticSetup(args) : LakeSetup(args);
}

/// Latest sample boundary across the fleet: where ingest increments
/// should start so they extend the tails.
MinuteStamp TailsEnd(const std::vector<ServerTelemetry>& tails) {
  MinuteStamp end = 0;
  for (const auto& st : tails) end = std::max(end, st.load.end());
  return end;
}

int CmdServe(const Args& args) {
  auto setup = BuildServingSetup(args);
  if (!setup.ok()) return Fail(setup.status());

  ServingOptions options;
  options.horizon_minutes =
      args.GetInt("horizon", options.horizon_minutes);
  std::unique_ptr<ThreadPool> pool;
  const int64_t threads = args.GetInt("threads", 0);
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(static_cast<int>(threads));
    options.pool = pool.get();
  }

  ServingEngine engine(std::move(setup->endpoint), options);
  Status st = engine.Bootstrap(setup->tails);
  if (!st.ok()) return Fail(st);
  TickResult boot = engine.Tick();  // initial fleet-wide forecasts
  std::fprintf(stderr,
               "serving %lld servers (model %s v%lld): %lld initial "
               "forecasts, %lld failed\n",
               static_cast<long long>(engine.server_count()),
               engine.endpoint().family().c_str(),
               static_cast<long long>(engine.endpoint().version()),
               static_cast<long long>(boot.refits),
               static_cast<long long>(boot.refit_failures));
  std::fprintf(stderr,
               "reading JSON requests from stdin; {\"verb\":\"tick\"} "
               "advances the 5-minute epoch\n");

  // JSON-lines REPL: one request per line, one response per line. The
  // tick verb is handled here, not in the engine — advancing the epoch
  // is the operator's (or timer's) call, not a client request.
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    auto parsed = Json::Parse(line);
    if (parsed.ok() && parsed->Contains("verb") &&
        (*parsed)["verb"].AsString() == "tick") {
      std::printf("%s\n", engine.Tick().ToJson().Dump().c_str());
    } else {
      std::printf("%s\n", engine.Handle(line).c_str());
    }
    std::fflush(stdout);
  }
  std::fprintf(stderr,
               "served %lld requests (%lld errors) over %lld ticks\n",
               static_cast<long long>(engine.requests_served()),
               static_cast<long long>(engine.requests_failed()),
               static_cast<long long>(engine.tick()));
  return 0;
}

int CmdLoadtest(const Args& args) {
  auto setup = BuildServingSetup(args);
  if (!setup.ok()) return Fail(setup.status());
  auto profile = ParseLoadProfile(args.Get("profile", "ramp"));
  if (!profile.ok()) return Fail(profile.status());
  auto mode = ParseDriverMode(args.Get("mode", "open"));
  if (!mode.ok()) return Fail(mode.status());

  LoadgenOptions options;
  options.profile = *profile;
  options.mode = *mode;
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  options.ticks = args.GetInt("ticks", options.ticks);
  options.base_requests_per_tick =
      args.GetInt("base", options.base_requests_per_tick);
  options.closed_loop_clients = static_cast<int>(
      args.GetInt("clients", options.closed_loop_clients));
  options.jobs = static_cast<int>(args.GetInt("jobs", 1));
  options.batch_fraction = args.GetDouble("batch-frac", 0.0);
  options.batch_size = args.GetInt("batch-size", options.batch_size);
  options.subscribe_fraction = args.GetDouble("subscribe-frac", 0.0);
  options.epoch_start = TailsEnd(setup->tails);

  std::unique_ptr<ThreadPool> pool;
  ServingOptions serving;
  if (options.jobs > 1) {
    pool = std::make_unique<ThreadPool>(options.jobs);
    serving.pool = pool.get();
  }
  ServingEngine engine(std::move(setup->endpoint), serving);
  Status st = engine.Bootstrap(setup->tails);
  if (!st.ok()) return Fail(st);
  engine.Tick();  // initial forecasts so epoch-0 queries are served

  std::vector<std::string> ids;
  ids.reserve(setup->tails.size());
  for (const auto& tail : setup->tails) ids.push_back(tail.server_id);
  const auto schedule = BuildSchedule(options, ids);
  const LoadgenReport report = RunLoadTest(&engine, options, schedule);

  const LatencySummary predict = report.latency.count("predict")
                                     ? report.latency.at("predict")
                                     : LatencySummary{};
  std::printf(
      "%s/%s: %lld requests, %lld ok, %lld errors, %.0f rps\n"
      "  predict p50/p95/p99 %.0f/%.0f/%.0f us\n"
      "  ticks %lld, refits %lld (%.3f per query), max in-flight %lld\n"
      "  notifications %lld (mean lag %.2f ticks)\n"
      "  response digest %016llx\n",
      LoadProfileName(*profile), DriverModeName(*mode),
      static_cast<long long>(report.requests),
      static_cast<long long>(report.ok),
      static_cast<long long>(report.errors), report.throughput_rps,
      predict.p50, predict.p95, predict.p99,
      static_cast<long long>(report.ticks),
      static_cast<long long>(report.refits), report.refit_per_query,
      static_cast<long long>(report.max_in_flight),
      static_cast<long long>(report.notifications),
      report.notify_lag_ticks,
      static_cast<unsigned long long>(report.response_digest));

  const std::string out = args.Get("out");
  if (!out.empty()) {
    Status ws = WriteObsArtifact(out, report.ToJson().DumpPretty());
    if (!ws.ok()) return Fail(ws);
    std::printf("wrote report to %s\n", out.c_str());
  }
  return 0;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: seagull <command> [flags]\n"
      "commands:\n"
      "  generate  --lake DIR --region NAME [--servers N] [--weeks W] "
      "[--seed S] [--format csv|binary]\n"
      "  pipeline  --lake DIR --docs FILE --region NAME[,NAME...] "
      "--week K [--model FAMILY] [--threads N] [--jobs N] [--retries N] "
      "[--lake-cache-mb MB] [--lake-mmap 0|1] "
      "[--fault-rate P --fault-seed S] "
      "[--trace-out FILE] [--metrics-out FILE]\n"
      "  schedule  --lake DIR --docs FILE --region NAME[,NAME...] "
      "--day D [--jobs N] [--lake-cache-mb MB] [--lake-mmap 0|1]\n"
      "  transcode --lake DIR --key KEY [--to csv|binary] [--out KEY]\n"
      "  dashboard --docs FILE\n"
      "  incidents --docs FILE --region NAME\n"
      "  advise    --lake DIR --docs FILE --region NAME --server ID "
      "--day D --start HH:MM [--duration MIN]\n"
      "  serve     (--lake DIR --docs FILE --region NAME [--week K] | "
      "--synthetic [--servers N] [--seed S]) [--horizon MIN] "
      "[--threads N]\n"
      "  loadtest  (same bootstrap flags as serve) "
      "[--profile ramp|spike|soak] [--mode open|closed] [--ticks N] "
      "[--base N] [--clients N] [--jobs N] [--batch-frac F] "
      "[--batch-size N] [--subscribe-frac F] [--out FILE]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  Args args(argc, argv);
  std::string command = argv[1];
  if (command == "generate") return CmdGenerate(args);
  if (command == "pipeline") return CmdPipeline(args);
  if (command == "schedule") return CmdSchedule(args);
  if (command == "transcode") return CmdTranscode(args);
  if (command == "dashboard") return CmdDashboard(args);
  if (command == "incidents") return CmdIncidents(args);
  if (command == "advise") return CmdAdvise(args);
  if (command == "serve") return CmdServe(args);
  if (command == "loadtest") return CmdLoadtest(args);
  Usage();
  return 2;
}
